package orb

import (
	"sync"
	"sync/atomic"
)

// Loopback is the in-process transport. Each "server" is an Adapter bound to
// a registry name; invocations are direct function calls, which makes
// thousand-node simulations deterministic and fast.
//
// An Interceptor may be installed to inject message loss, delay and
// duplication for failure-injection tests, emulating an unreliable network;
// internal/chaos provides the standard engine.
//
// The registry is copy-on-write: Invoke reads one atomic snapshot (no lock),
// Bind/Unbind/SetInterceptor copy-and-swap under mu. Registration is a setup
// operation; invocation is the hot path.
type Loopback struct {
	// mu serializes writers of state.
	//lint:guards state
	mu    sync.Mutex
	state atomic.Pointer[loopbackState]
}

// loopbackState is one immutable snapshot of the transport's registry.
type loopbackState struct {
	adapters    map[string]*Adapter
	interceptor Interceptor
}

var _ Invoker = (*Loopback)(nil)

// FaultPolicy decides the fate of one in-process invocation. Return nil to
// deliver normally; return an error (typically CodeTransport) to simulate a
// lost or failed message.
//
// It is the legacy drop-only hook: SetFaultPolicy adapts it onto the shared
// Interceptor path. New code should install an Interceptor (for example a
// chaos.Engine), which also models delay and duplication.
type FaultPolicy func(target Endpoint, key, op string) error

// NewLoopback returns an empty in-process transport.
func NewLoopback() *Loopback {
	l := &Loopback{}
	l.state.Store(&loopbackState{adapters: make(map[string]*Adapter)})
	return l
}

// mutate applies fn to a copy of the current state and publishes it. Callers
// must not hold mu.
func (l *Loopback) mutate(fn func(*loopbackState)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	old := l.state.Load()
	next := &loopbackState{
		adapters:    make(map[string]*Adapter, len(old.adapters)+1),
		interceptor: old.interceptor,
	}
	for k, v := range old.adapters {
		next.adapters[k] = v
	}
	fn(next)
	l.state.Store(next)
}

// SetInterceptor installs (or clears, with nil) the fault-injection hook.
func (l *Loopback) SetInterceptor(ic Interceptor) {
	l.mutate(func(st *loopbackState) { st.interceptor = ic })
}

// SetFaultPolicy installs (or clears, with nil) a drop-only fault hook. It
// is a thin adapter over SetInterceptor kept for existing tests.
func (l *Loopback) SetFaultPolicy(p FaultPolicy) {
	if p == nil {
		l.SetInterceptor(nil)
		return
	}
	l.SetInterceptor(faultPolicyInterceptor{policy: p})
}

// Bind registers adapter under name and returns its endpoint.
func (l *Loopback) Bind(name string, adapter *Adapter) (Endpoint, error) {
	var err error
	l.mutate(func(st *loopbackState) {
		if _, exists := st.adapters[name]; exists {
			err = Errorf(CodeTransport, "loopback name %q already bound", name)
			return
		}
		st.adapters[name] = adapter
	})
	if err != nil {
		return Endpoint{}, err
	}
	return Endpoint{Net: NetLoopback, Addr: name}, nil
}

// Unbind removes the named adapter. It reports whether it existed.
func (l *Loopback) Unbind(name string) bool {
	var existed bool
	l.mutate(func(st *loopbackState) {
		if _, ok := st.adapters[name]; ok {
			existed = true
			delete(st.adapters, name)
		}
	})
	return existed
}

// Invoke implements Invoker for inproc references.
//
//lint:hotpath alloc=0 locks=0 block=0
func (l *Loopback) Invoke(ref ObjectRef, op string, arg []byte) ([]byte, error) {
	if ref.Endpoint.Net != NetLoopback {
		return nil, Errorf(CodeTransport, "loopback cannot reach %s endpoint", ref.Endpoint.Net)
	}
	st := l.state.Load()
	ic := st.interceptor
	adapter, ok := st.adapters[ref.Endpoint.Addr]
	if ic == nil {
		// Fast path: the servant ownership contract (DESIGN.md §13 — the
		// request buffer is read-only and must not be retained past
		// Dispatch) makes the defensive copy a real transport's
		// serialization implies unnecessary, so dispatch straight into the
		// adapter with the caller's buffer.
		if !ok {
			return nil, Errorf(CodeTransport, "no loopback server %q", ref.Endpoint.Addr)
		}
		return adapter.dispatch(ref.Key, op, arg)
	}
	// next performs one delivery; the interceptor may call it zero, one or
	// several times (drop / deliver / duplicate), possibly asynchronously —
	// including after Invoke has returned and the caller reuses arg — so
	// each (re)delivery copies the argument.
	next := func() ([]byte, error) { //lint:alloc interceptor path builds one closure per call

		adapter, ok := l.state.Load().adapters[ref.Endpoint.Addr]
		if !ok {
			return nil, Errorf(CodeTransport, "no loopback server %q", ref.Endpoint.Addr)
		}
		var argCopy []byte
		if arg != nil {
			argCopy = make([]byte, len(arg)) //lint:alloc each (re)delivery copies the caller's buffer
			copy(argCopy, arg)
		}
		return adapter.dispatch(ref.Key, op, argCopy)
	}
	return ic.Intercept(ref.Endpoint, ref.Key, op, arg, next)
}
