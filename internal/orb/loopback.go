package orb

import (
	"sync"
)

// Loopback is the in-process transport. Each "server" is an Adapter bound to
// a registry name; invocations are direct function calls, which makes
// thousand-node simulations deterministic and fast.
//
// An Interceptor may be installed to inject message loss, delay and
// duplication for failure-injection tests, emulating an unreliable network;
// internal/chaos provides the standard engine.
type Loopback struct {
	// mu guards adapters and interceptor.
	mu          sync.RWMutex
	adapters    map[string]*Adapter
	interceptor Interceptor
}

var _ Invoker = (*Loopback)(nil)

// FaultPolicy decides the fate of one in-process invocation. Return nil to
// deliver normally; return an error (typically CodeTransport) to simulate a
// lost or failed message.
//
// It is the legacy drop-only hook: SetFaultPolicy adapts it onto the shared
// Interceptor path. New code should install an Interceptor (for example a
// chaos.Engine), which also models delay and duplication.
type FaultPolicy func(target Endpoint, key, op string) error

// NewLoopback returns an empty in-process transport.
func NewLoopback() *Loopback {
	return &Loopback{adapters: make(map[string]*Adapter)}
}

// SetInterceptor installs (or clears, with nil) the fault-injection hook.
func (l *Loopback) SetInterceptor(ic Interceptor) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.interceptor = ic
}

// SetFaultPolicy installs (or clears, with nil) a drop-only fault hook. It
// is a thin adapter over SetInterceptor kept for existing tests.
func (l *Loopback) SetFaultPolicy(p FaultPolicy) {
	if p == nil {
		l.SetInterceptor(nil)
		return
	}
	l.SetInterceptor(faultPolicyInterceptor{policy: p})
}

// Bind registers adapter under name and returns its endpoint.
func (l *Loopback) Bind(name string, adapter *Adapter) (Endpoint, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, exists := l.adapters[name]; exists {
		return Endpoint{}, Errorf(CodeTransport, "loopback name %q already bound", name)
	}
	l.adapters[name] = adapter
	return Endpoint{Net: NetLoopback, Addr: name}, nil
}

// Unbind removes the named adapter. It reports whether it existed.
func (l *Loopback) Unbind(name string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.adapters[name]; !ok {
		return false
	}
	delete(l.adapters, name)
	return true
}

// Invoke implements Invoker for inproc references.
func (l *Loopback) Invoke(ref ObjectRef, op string, arg []byte) ([]byte, error) {
	if ref.Endpoint.Net != NetLoopback {
		return nil, Errorf(CodeTransport, "loopback cannot reach %s endpoint", ref.Endpoint.Net)
	}
	l.mu.RLock()
	ic := l.interceptor
	l.mu.RUnlock()
	// next performs one delivery; the interceptor may call it zero, one or
	// several times (drop / deliver / duplicate), possibly asynchronously.
	next := func() ([]byte, error) {
		l.mu.RLock()
		adapter, ok := l.adapters[ref.Endpoint.Addr]
		l.mu.RUnlock()
		if !ok {
			return nil, Errorf(CodeTransport, "no loopback server %q", ref.Endpoint.Addr)
		}
		// Copy the argument: a real transport would serialize, so servants
		// must not be able to alias the caller's buffer. Each (re)delivery
		// makes its own copy.
		var argCopy []byte
		if arg != nil {
			argCopy = make([]byte, len(arg))
			copy(argCopy, arg)
		}
		return adapter.dispatch(ref.Key, op, argCopy)
	}
	return deliver(ic, ref.Endpoint, ref.Key, op, arg, next)
}
