package orb

import (
	"bufio"
	"errors"
	"log/slog"
	"net"
	"sync"
)

// Server accepts ORB protocol connections on a TCP listener and dispatches
// requests to an Adapter. Each request runs in its own goroutine so slow
// servants do not head-of-line-block a connection.
type Server struct {
	adapter  *Adapter
	listener net.Listener
	log      *slog.Logger

	// mu guards conns and closed. wg tracks the accept loop and every
	// per-connection goroutine; Close waits on it after releasing mu.
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer returns a Server dispatching into adapter on ln. Pass a nil
// logger to discard logs. Call Start to begin accepting.
func NewServer(ln net.Listener, adapter *Adapter, log *slog.Logger) *Server {
	if log == nil {
		log = discardLogger()
	}
	return &Server{
		adapter:  adapter,
		listener: ln,
		log:      log,
		conns:    make(map[net.Conn]struct{}),
	}
}

// Endpoint returns the server's reachable endpoint.
func (s *Server) Endpoint() Endpoint {
	return Endpoint{Net: NetTCP, Addr: s.listener.Addr().String()}
}

// Ref returns a reference to the object with the given key on this server.
func (s *Server) Ref(key string) ObjectRef {
	return ObjectRef{Endpoint: s.Endpoint(), Key: key}
}

// Start begins the accept loop in a background goroutine.
func (s *Server) Start() {
	s.wg.Add(1)
	go s.acceptLoop()
}

// Close stops accepting, closes every live connection and waits for all
// server goroutines to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	err := s.listener.Close()
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			if !s.isClosed() {
				s.log.Warn("orb server accept", "err", err)
			}
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()

	var (
		// writeMu serializes reply frames onto writer across the
		// per-request goroutines.
		writeMu sync.Mutex
		reqWG   sync.WaitGroup
	)
	reader := bufio.NewReader(conn)
	writer := bufio.NewWriter(conn)

	send := func(f *frame) {
		writeMu.Lock()
		defer writeMu.Unlock()
		if err := writeFrame(writer, f); err != nil {
			return
		}
		_ = writer.Flush()
	}

	for {
		f, err := readFrame(reader)
		if err != nil {
			if !errors.Is(err, net.ErrClosed) && !s.isClosed() {
				s.log.Debug("orb server connection ended", "err", err)
			}
			break
		}
		if f.kind != msgRequest {
			s.log.Warn("orb server received non-request frame", "kind", f.kind)
			continue
		}
		reqWG.Add(1)
		go func(f *frame) {
			defer reqWG.Done()
			reply, err := s.adapter.dispatch(f.key, f.op, f.body)
			if err != nil {
				re := &RemoteError{Code: CodeApplication, Msg: err.Error()}
				errors.As(err, &re)
				send(&frame{kind: msgError, reqID: f.reqID, code: re.Code, msg: re.Msg})
				return
			}
			send(&frame{kind: msgReply, reqID: f.reqID, body: reply})
		}(f)
	}
	reqWG.Wait()
}

func discardLogger() *slog.Logger {
	return slog.New(slog.DiscardHandler)
}
