package orb

import (
	"bufio"
	"errors"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
)

// Server accepts ORB protocol connections on a TCP listener and dispatches
// requests to an Adapter. Each request runs in its own goroutine so slow
// servants do not head-of-line-block a connection.
type Server struct {
	adapter  *Adapter
	listener net.Listener
	log      *slog.Logger

	// mu guards conns and closed. wg tracks the accept loop and every
	// per-connection goroutine; Close waits on it after releasing mu.
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer returns a Server dispatching into adapter on ln. Pass a nil
// logger to discard logs. Call Start to begin accepting.
func NewServer(ln net.Listener, adapter *Adapter, log *slog.Logger) *Server {
	if log == nil {
		log = discardLogger()
	}
	return &Server{
		adapter:  adapter,
		listener: ln,
		log:      log,
		conns:    make(map[net.Conn]struct{}),
	}
}

// Endpoint returns the server's reachable endpoint.
func (s *Server) Endpoint() Endpoint {
	return Endpoint{Net: NetTCP, Addr: s.listener.Addr().String()}
}

// Ref returns a reference to the object with the given key on this server.
func (s *Server) Ref(key string) ObjectRef {
	return ObjectRef{Endpoint: s.Endpoint(), Key: key}
}

// Start begins the accept loop in a background goroutine.
func (s *Server) Start() {
	s.wg.Add(1)
	go s.acceptLoop()
}

// Close stops accepting, closes every live connection and waits for all
// server goroutines to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	err := s.listener.Close()
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			if !s.isClosed() {
				s.log.Warn("orb server accept", "err", err)
			}
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()

	var (
		// writeMu serializes reply frames onto writer across the
		// per-request goroutines; writeWaiters counts goroutines inside
		// send so the flush can be deferred to the last writer in a burst
		// — N concurrent replies share one flush instead of paying one
		// syscall each.
		writeMu      sync.Mutex
		writeWaiters atomic.Int32
		reqWG        sync.WaitGroup
	)
	reader := bufio.NewReader(conn)
	writer := bufio.NewWriter(conn)

	send := func(f *frame) {
		writeWaiters.Add(1)
		writeMu.Lock()
		err := writeFrame(writer, f)
		// The last writer out flushes for everyone: if the decrement sees
		// other waiters, one of them is about to take writeMu and will
		// flush (or defer again) after its own write.
		if writeWaiters.Add(-1) == 0 && err == nil {
			_ = writer.Flush()
		}
		writeMu.Unlock()
	}

	for {
		f, err := readFrame(reader)
		if err != nil {
			if !errors.Is(err, net.ErrClosed) && !s.isClosed() {
				s.log.Debug("orb server connection ended", "err", err)
			}
			break
		}
		if f.kind != msgRequest {
			s.log.Warn("orb server received non-request frame", "kind", f.kind)
			putFrame(f)
			continue
		}
		reqWG.Add(1)
		go func(f *frame) {
			defer reqWG.Done()
			enc, err := s.adapter.dispatchEnc(f.key, f.op, f.body)
			if err != nil {
				re := &RemoteError{Code: CodeApplication, Msg: err.Error()}
				errors.As(err, &re)
				reply := getFrame()
				reply.kind, reply.reqID, reply.code, reply.msg = msgError, f.reqID, re.Code, re.Msg
				putFrame(f) // request body is dead once dispatch returned
				send(reply)
				putFrame(reply)
				return
			}
			reply := getFrame()
			reply.kind, reply.reqID = msgReply, f.reqID
			if enc != nil {
				reply.body = enc.Bytes()
			}
			putFrame(f)
			send(reply)
			reply.body = nil // owned by enc, not the frame pool
			putFrame(reply)
			PutEncoder(enc)
		}(f)
	}
	reqWG.Wait()
}

func discardLogger() *slog.Logger {
	return slog.New(slog.DiscardHandler)
}
