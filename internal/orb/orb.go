package orb

import (
	"log/slog"
	"net"
)

// ORB is the facade components hold: it routes invocations to the right
// transport (loopback or TCP) and creates servers.
type ORB struct {
	loopback *Loopback
	client   *Client
	log      *slog.Logger
}

var _ Invoker = (*ORB)(nil)

// Option configures an ORB.
type Option func(*ORB)

// WithLogger sets the ORB's logger (default: discard).
func WithLogger(log *slog.Logger) Option {
	return func(o *ORB) { o.log = log }
}

// WithClientOptions configures the TCP client.
func WithClientOptions(opts ...ClientOption) Option {
	return func(o *ORB) { o.client = NewClient(opts...) }
}

// New returns an ORB with a fresh loopback registry and TCP client pool.
func New(opts ...Option) *ORB {
	o := &ORB{
		loopback: NewLoopback(),
		client:   NewClient(),
		log:      discardLogger(),
	}
	for _, opt := range opts {
		opt(o)
	}
	return o
}

// Loopback exposes the in-process transport (for binding simulated servers
// and installing fault policies).
func (o *ORB) Loopback() *Loopback { return o.loopback }

// SetInterceptor installs (or clears, with nil) one fault-injection hook on
// both transports, so a chaos engine sees every invocation the ORB routes.
func (o *ORB) SetInterceptor(ic Interceptor) {
	o.loopback.SetInterceptor(ic)
	o.client.SetInterceptor(ic)
}

// Invoke implements Invoker, routing by the reference's transport.
func (o *ORB) Invoke(ref ObjectRef, op string, arg []byte) ([]byte, error) {
	switch ref.Endpoint.Net {
	case NetLoopback:
		return o.loopback.Invoke(ref, op, arg)
	case NetTCP:
		return o.client.Invoke(ref, op, arg)
	default:
		return nil, Errorf(CodeTransport, "unknown transport %q", ref.Endpoint.Net)
	}
}

// ListenTCP starts a TCP server on addr (e.g. "127.0.0.1:0") dispatching to
// adapter. The returned server is already accepting.
func (o *ORB) ListenTCP(addr string, adapter *Adapter) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := NewServer(ln, adapter, o.log)
	srv.Start()
	return srv, nil
}

// BindLoopback registers adapter on the in-process transport and returns a
// reference factory endpoint.
func (o *ORB) BindLoopback(name string, adapter *Adapter) (Endpoint, error) {
	return o.loopback.Bind(name, adapter)
}

// Close releases client connections. Servers are closed individually.
func (o *ORB) Close() {
	o.client.Close()
}
