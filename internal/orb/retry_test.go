package orb

import (
	"context"
	"errors"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{Errorf(CodeTransport, "conn reset"), true},
		{Errorf(CodeTimeout, "deadline"), true},
		{Errorf(CodeApplication, "servant said no"), false},
		{Errorf(CodeObjectNotExist, "gone"), false},
		{Errorf(CodeBadOperation, "nope"), false},
		{Errorf(CodeMarshal, "garbage"), false},
		{errors.New("plain"), false},
		{nil, false},
	}
	for _, c := range cases {
		if got := Retryable(c.err); got != c.want {
			t.Errorf("Retryable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestRemoteErrorIsDeadlineExceeded(t *testing.T) {
	if !errors.Is(Errorf(CodeTimeout, "slow"), context.DeadlineExceeded) {
		t.Error("timeout error should match context.DeadlineExceeded")
	}
	if errors.Is(Errorf(CodeTransport, "down"), context.DeadlineExceeded) {
		t.Error("transport error must not match context.DeadlineExceeded")
	}
}

func TestBackoffDeterministicAndCapped(t *testing.T) {
	p := BackoffPolicy{Base: 50 * time.Millisecond, Cap: 2 * time.Second}
	prev := time.Duration(0)
	for attempt := 1; attempt <= 10; attempt++ {
		d1 := p.Delay("host:1", "op", attempt)
		d2 := p.Delay("host:1", "op", attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: delay not deterministic: %v vs %v", attempt, d1, d2)
		}
		if d1 > p.Cap {
			t.Fatalf("attempt %d: delay %v exceeds cap %v", attempt, d1, p.Cap)
		}
		if d1 <= 0 {
			t.Fatalf("attempt %d: non-positive delay %v", attempt, d1)
		}
		// Jittered exponential growth: each delay stays within [0.5, 1.0) of
		// the un-jittered ladder, so after a doubling it cannot shrink below
		// half the previous ceiling.
		_ = prev
		prev = d1
	}
	// Different call identities get different jitter (with overwhelming
	// probability for these fixed inputs).
	if p.Delay("host:1", "op", 3) == p.Delay("host:2", "op", 3) &&
		p.Delay("host:1", "op", 4) == p.Delay("host:2", "op", 4) {
		t.Error("jitter does not vary with endpoint")
	}
}

func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	s := newBreakerSet(BreakerPolicy{Threshold: 3, Cooldown: 10 * time.Second}, clock)

	fail := Errorf(CodeTransport, "down")
	const addr = "n1:9000"

	// Closed: calls flow, failures accumulate.
	for i := 0; i < 2; i++ {
		if !s.allow(addr) {
			t.Fatalf("closed breaker denied call %d", i)
		}
		s.record(addr, fail)
	}
	if got := s.stateOf(addr); got != "closed" {
		t.Fatalf("state after 2 failures = %s", got)
	}
	s.record(addr, fail) // third consecutive failure opens
	if got := s.stateOf(addr); got != "open" {
		t.Fatalf("state after threshold = %s", got)
	}
	if s.allow(addr) {
		t.Fatal("open breaker admitted a call before cooldown")
	}

	// After the cooldown one probe is admitted; concurrent calls still fail
	// fast until the probe resolves.
	now = now.Add(11 * time.Second)
	if !s.allow(addr) {
		t.Fatal("no probe admitted after cooldown")
	}
	if s.stateOf(addr) != "half-open" {
		t.Fatalf("state during probe = %s", s.stateOf(addr))
	}
	if s.allow(addr) {
		t.Fatal("second probe admitted while first in flight")
	}

	// Failed probe re-opens for a fresh cooldown.
	s.record(addr, fail)
	if s.stateOf(addr) != "open" {
		t.Fatalf("state after failed probe = %s", s.stateOf(addr))
	}
	now = now.Add(11 * time.Second)
	if !s.allow(addr) {
		t.Fatal("no probe after second cooldown")
	}
	// Successful probe closes the circuit and resets the streak.
	s.record(addr, nil)
	if s.stateOf(addr) != "closed" {
		t.Fatalf("state after successful probe = %s", s.stateOf(addr))
	}
	if !s.allow(addr) {
		t.Fatal("closed breaker denied call")
	}

	// Application errors prove reachability: they reset the streak.
	s.record(addr, fail)
	s.record(addr, fail)
	s.record(addr, Errorf(CodeApplication, "servant error"))
	s.record(addr, fail)
	s.record(addr, fail)
	if s.stateOf(addr) != "closed" {
		t.Fatal("app error did not reset the failure streak")
	}
}

// flakyInterceptor fails the first n delivery attempts with a transport
// error, then delegates to real delivery.
type flakyInterceptor struct {
	remaining atomic.Int64
	attempts  atomic.Int64
}

func (f *flakyInterceptor) Intercept(_ Endpoint, _, _ string, _ []byte, next func() ([]byte, error)) ([]byte, error) {
	f.attempts.Add(1)
	if f.remaining.Add(-1) >= 0 {
		return nil, Errorf(CodeTransport, "injected loss")
	}
	return next()
}

func TestClientRetriesTransientFailures(t *testing.T) {
	var slept []time.Duration
	o := New(WithClientOptions(
		WithRetries(3),
		WithBackoff(BackoffPolicy{Base: time.Millisecond, Cap: 4 * time.Millisecond}),
	))
	o.client.sleep = func(d time.Duration) { slept = append(slept, d) }
	defer o.Close()

	a := NewAdapter()
	if err := a.Register("calc", echoServant()); err != nil {
		t.Fatal(err)
	}
	srv, err := o.ListenTCP("127.0.0.1:0", a)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	flaky := &flakyInterceptor{}
	flaky.remaining.Store(2)
	o.SetInterceptor(flaky)

	reply, err := o.Invoke(srv.Ref("calc"), "echo", encodeString("persist"))
	if err != nil {
		t.Fatalf("Invoke with retries: %v", err)
	}
	if got := NewDecoder(reply).String(); got != "persist" {
		t.Fatalf("echo = %q", got)
	}
	if got := flaky.attempts.Load(); got != 3 {
		t.Fatalf("delivery attempts = %d, want 3", got)
	}
	if len(slept) != 2 {
		t.Fatalf("backoff sleeps = %d, want 2", len(slept))
	}
	for i, d := range slept {
		if d <= 0 || d > 4*time.Millisecond {
			t.Fatalf("sleep %d = %v outside policy bounds", i, d)
		}
	}

	// Terminal errors are not retried.
	flaky.attempts.Store(0)
	if _, err := o.Invoke(srv.Ref("calc"), "fail", nil); !IsCode(err, CodeApplication) {
		t.Fatalf("app error = %v", err)
	}
	if got := flaky.attempts.Load(); got != 1 {
		t.Fatalf("app error retried: %d attempts", got)
	}

	// Retries exhausted: the last transport error surfaces.
	flaky.remaining.Store(1 << 30)
	flaky.attempts.Store(0)
	if _, err := o.Invoke(srv.Ref("calc"), "echo", encodeString("x")); !IsCode(err, CodeTransport) {
		t.Fatalf("exhausted retries = %v", err)
	}
	if got := flaky.attempts.Load(); got != 4 {
		t.Fatalf("attempts with 3 retries = %d, want 4", got)
	}
}

func TestClientBreakerFailsFastAndRecovers(t *testing.T) {
	o := New(WithClientOptions(
		WithCallTimeout(2*time.Second),
		WithBreaker(BreakerPolicy{Threshold: 2, Cooldown: 50 * time.Millisecond}),
	))
	defer o.Close()

	a := NewAdapter()
	if err := a.Register("calc", echoServant()); err != nil {
		t.Fatal(err)
	}
	srv, err := o.ListenTCP("127.0.0.1:0", a)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ref := srv.Ref("calc")
	addr := ref.Endpoint.Addr

	drop := &flakyInterceptor{}
	drop.remaining.Store(1 << 30)
	o.SetInterceptor(drop)

	// Two consecutive transport failures trip the breaker.
	for i := 0; i < 2; i++ {
		if _, err := o.Invoke(ref, "echo", encodeString("x")); !IsCode(err, CodeTransport) {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if got := o.client.BreakerState(addr); got != "open" {
		t.Fatalf("breaker state = %s, want open", got)
	}
	// While open, calls fail fast without touching the transport.
	before := drop.attempts.Load()
	if _, err := o.Invoke(ref, "echo", encodeString("x")); !IsCode(err, CodeTransport) {
		t.Fatalf("open-circuit call: %v", err)
	}
	if drop.attempts.Load() != before {
		t.Fatal("open circuit still attempted delivery")
	}

	// Heal the network; after the cooldown a probe closes the circuit.
	drop.remaining.Store(0)
	time.Sleep(60 * time.Millisecond)
	if _, err := o.Invoke(ref, "echo", encodeString("back")); err != nil {
		t.Fatalf("probe after cooldown: %v", err)
	}
	if got := o.client.BreakerState(addr); got != "closed" {
		t.Fatalf("breaker state after recovery = %s, want closed", got)
	}
}

// TestBreakerOpenPreservesRetryBudget covers the breaker/backoff interaction
// fix: a tripped circuit must fail the invocation immediately — no backoff
// sleep, no burned retry slot, no delivery attempt.
func TestBreakerOpenPreservesRetryBudget(t *testing.T) {
	var slept atomic.Int64
	o := New(WithClientOptions(
		WithRetries(3),
		WithBackoff(BackoffPolicy{Base: time.Millisecond, Cap: 4 * time.Millisecond}),
		WithBreaker(BreakerPolicy{Threshold: 2, Cooldown: time.Minute}),
	))
	o.client.sleep = func(time.Duration) { slept.Add(1) }
	defer o.Close()

	a := NewAdapter()
	if err := a.Register("calc", echoServant()); err != nil {
		t.Fatal(err)
	}
	srv, err := o.ListenTCP("127.0.0.1:0", a)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ref := srv.Ref("calc")

	drop := &flakyInterceptor{}
	drop.remaining.Store(1 << 30)
	o.SetInterceptor(drop)

	// One invocation: two real attempts trip the threshold-2 breaker, and the
	// third loop iteration must bail out at the circuit — not sleep first.
	if _, err := o.Invoke(ref, "echo", encodeString("x")); !IsCode(err, CodeTransport) {
		t.Fatalf("tripping call: %v", err)
	}
	if got := drop.attempts.Load(); got != 2 {
		t.Fatalf("delivery attempts before trip = %d, want 2", got)
	}
	if got := slept.Load(); got != 1 {
		t.Fatalf("backoff sleeps before trip = %d, want 1 (between the two real attempts)", got)
	}
	if got := o.client.BreakerState(ref.Endpoint.Addr); got != "open" {
		t.Fatalf("breaker state = %s, want open", got)
	}

	// With the circuit open, the full retry budget is preserved: zero
	// attempts, zero sleeps, immediate failure.
	attempts, sleeps := drop.attempts.Load(), slept.Load()
	if _, err := o.Invoke(ref, "echo", encodeString("x")); !IsCode(err, CodeTransport) {
		t.Fatalf("open-circuit call: %v", err)
	}
	if got := drop.attempts.Load(); got != attempts {
		t.Fatalf("open circuit made %d delivery attempts", got-attempts)
	}
	if got := slept.Load(); got != sleeps {
		t.Fatalf("open circuit slept %d times; fail-fast must not back off", got-sleeps)
	}
}

// TestClientBreakerHalfOpenUnderDelays drives the half-open transition while
// the probe call is artificially delayed (the shape chaos delay faults
// produce): exactly one probe is admitted after the cooldown, concurrent
// calls keep failing fast while it is in flight, and its success closes the
// circuit.
func TestClientBreakerHalfOpenUnderDelays(t *testing.T) {
	o := New(WithClientOptions(
		WithCallTimeout(2*time.Second),
		WithBreaker(BreakerPolicy{Threshold: 1, Cooldown: 30 * time.Millisecond}),
	))
	defer o.Close()

	a := NewAdapter()
	if err := a.Register("calc", echoServant()); err != nil {
		t.Fatal(err)
	}
	srv, err := o.ListenTCP("127.0.0.1:0", a)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ref := srv.Ref("calc")
	addr := ref.Endpoint.Addr

	var failing atomic.Bool
	failing.Store(true)
	entered := make(chan struct{})
	release := make(chan struct{})
	o.SetInterceptor(interceptorFunc(func(_ Endpoint, _, _ string, _ []byte, next func() ([]byte, error)) ([]byte, error) {
		if failing.Load() {
			return nil, Errorf(CodeTransport, "injected loss")
		}
		entered <- struct{}{} // announce the probe, then stall it
		<-release
		return next()
	}))

	if _, err := o.Invoke(ref, "echo", encodeString("x")); !IsCode(err, CodeTransport) {
		t.Fatalf("tripping call: %v", err)
	}
	if got := o.client.BreakerState(addr); got != "open" {
		t.Fatalf("breaker state = %s, want open", got)
	}

	// Heal the network and let the cooldown pass; the next call is the probe.
	failing.Store(false)
	time.Sleep(40 * time.Millisecond)
	probeDone := make(chan error, 1)
	go func() {
		_, err := o.Invoke(ref, "echo", encodeString("probe"))
		probeDone <- err
	}()
	<-entered // probe is in flight, delayed inside the interceptor

	if got := o.client.BreakerState(addr); got != "half-open" {
		t.Fatalf("breaker state during probe = %s, want half-open", got)
	}
	// A concurrent call must fail fast, not queue a second probe.
	if _, err := o.Invoke(ref, "echo", encodeString("x")); !IsCode(err, CodeTransport) {
		t.Fatalf("concurrent call during half-open: %v", err)
	}

	close(release)
	if err := <-probeDone; err != nil {
		t.Fatalf("probe: %v", err)
	}
	if got := o.client.BreakerState(addr); got != "closed" {
		t.Fatalf("breaker state after probe success = %s, want closed", got)
	}
}

// TestClientHungPeerDeadlines covers the satellite fix: a peer that accepts
// the connection but never replies must not wedge Invoke or poison the pool.
func TestClientHungPeerDeadlines(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var accepted atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			accepted.Add(1)
			// Swallow bytes forever, never reply.
			go func() { _, _ = io.Copy(io.Discard, conn) }()
		}
	}()

	c := NewClient(WithCallTimeout(100 * time.Millisecond))
	defer c.Close()
	ref := ObjectRef{Endpoint: Endpoint{Net: NetTCP, Addr: ln.Addr().String()}, Key: "obj"}

	start := time.Now()
	_, err = c.Invoke(ref, "op", nil)
	if !IsCode(err, CodeTimeout) {
		t.Fatalf("hung peer error = %v, want timeout", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timeout does not match context.DeadlineExceeded: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Invoke blocked %v on a hung peer", elapsed)
	}

	// The wedged connection saw no frames for a full budget, so it must have
	// been evicted: the next call dials afresh rather than reusing it.
	if _, err := c.Invoke(ref, "op", nil); !IsCode(err, CodeTimeout) {
		t.Fatalf("second call error = %v", err)
	}
	if got := accepted.Load(); got != 2 {
		t.Fatalf("accepted connections = %d, want 2 (evict + redial)", got)
	}
	ln.Close()
	<-done
}

// TestLoopbackInterceptorSharedPath verifies the promoted hook: the same
// Interceptor drives loopback delivery, including zero-delivery (drop) and
// double-delivery (duplicate) shapes the old FaultPolicy could not express.
func TestLoopbackInterceptorSharedPath(t *testing.T) {
	o := New()
	a := NewAdapter()
	var calls atomic.Int64
	mux := NewOpMux().Handle("ping", func(string, *Decoder) (*Encoder, error) {
		calls.Add(1)
		return &Encoder{}, nil
	})
	if err := a.Register("obj", mux); err != nil {
		t.Fatal(err)
	}
	ep, err := o.BindLoopback("svc", a)
	if err != nil {
		t.Fatal(err)
	}
	ref := ObjectRef{Endpoint: ep, Key: "obj"}

	drop := &flakyInterceptor{}
	drop.remaining.Store(1)
	o.SetInterceptor(drop)
	if _, err := o.Invoke(ref, "ping", nil); !IsCode(err, CodeTransport) {
		t.Fatalf("dropped call = %v", err)
	}
	if calls.Load() != 0 {
		t.Fatal("dropped message still reached servant")
	}
	if _, err := o.Invoke(ref, "ping", nil); err != nil {
		t.Fatalf("healed call: %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("servant calls = %d", calls.Load())
	}

	// A duplicating interceptor delivers twice; the caller sees one reply.
	o.SetInterceptor(interceptorFunc(func(_ Endpoint, _, _ string, _ []byte, next func() ([]byte, error)) ([]byte, error) {
		reply, err := next()
		_, _ = next() // duplicate delivery, reply discarded
		return reply, err
	}))
	if _, err := o.Invoke(ref, "ping", nil); err != nil {
		t.Fatalf("duplicated call: %v", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("servant calls after duplicate = %d, want 3", calls.Load())
	}

	// Clearing restores plain delivery.
	o.SetInterceptor(nil)
	if _, err := o.Invoke(ref, "ping", nil); err != nil {
		t.Fatalf("plain call: %v", err)
	}
}

// interceptorFunc adapts a function to the Interceptor interface in tests.
type interceptorFunc func(Endpoint, string, string, []byte, func() ([]byte, error)) ([]byte, error)

func (f interceptorFunc) Intercept(target Endpoint, key, op string, arg []byte, next func() ([]byte, error)) ([]byte, error) {
	return f(target, key, op, arg, next)
}
