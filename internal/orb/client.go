package orb

import (
	"bufio"
	"errors"
	"net"
	"os"
	"sync"
	"time"
)

// Invoker sends a request to an object and waits for the reply. The ORB
// facade, the Loopback, and test fakes all implement it.
type Invoker interface {
	Invoke(ref ObjectRef, op string, arg []byte) ([]byte, error)
}

// Client invokes objects on remote TCP ORB servers. It maintains one
// multiplexed connection per endpoint, created lazily and re-dialed after
// failures. It is safe for concurrent use.
//
// Every call runs under a per-call budget (WithCallTimeout): the budget
// bounds the dial, the socket write, and the reply wait, so a hung peer can
// never block Invoke indefinitely. Failures are classified by Retryable;
// with WithRetries the client re-sends retryable failures under capped
// exponential backoff with deterministic jitter, and WithBreaker adds a
// per-endpoint circuit breaker that fails fast while an endpoint is down.
type Client struct {
	dialTimeout time.Duration
	callTimeout time.Duration
	maxRetries  int
	backoff     BackoffPolicy
	breakers    *breakerSet
	sleep       func(time.Duration) // pacing hook, replaceable in tests

	// mu guards conns and interceptor. conn() probes an existing
	// connection's liveness (clientConn.mu) before reusing it, so c.mu
	// nests outside the per-connection lock.
	//lint:lockorder orb.Client.mu<orb.clientConn.mu
	mu          sync.Mutex
	conns       map[string]*clientConn
	interceptor Interceptor
	// wg tracks background teardown of superseded connections so Close can
	// wait for every goroutine the client started.
	wg sync.WaitGroup
}

var _ Invoker = (*Client)(nil)

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithDialTimeout sets the TCP dial timeout (default 5s).
func WithDialTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.dialTimeout = d }
}

// WithCallTimeout sets the per-invocation budget (default 30s). The budget
// covers the write and the reply wait of one delivery attempt.
func WithCallTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.callTimeout = d }
}

// WithRetries allows up to n additional delivery attempts after a retryable
// failure (default 0: fail on the first error, preserving at-most-once
// semantics for non-idempotent operations).
func WithRetries(n int) ClientOption {
	return func(c *Client) { c.maxRetries = n }
}

// WithBackoff sets the retry pacing policy (default DefaultBackoff).
func WithBackoff(p BackoffPolicy) ClientOption {
	return func(c *Client) { c.backoff = p }
}

// WithBreaker enables the per-endpoint circuit breaker.
func WithBreaker(p BreakerPolicy) ClientOption {
	return func(c *Client) {
		if p.Threshold > 0 {
			c.breakers = newBreakerSet(p, time.Now)
		}
	}
}

// NewClient returns a Client ready to invoke.
func NewClient(opts ...ClientOption) *Client {
	c := &Client{
		dialTimeout: 5 * time.Second,
		callTimeout: 30 * time.Second,
		backoff:     DefaultBackoff,
		sleep:       time.Sleep,
		conns:       make(map[string]*clientConn),
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// SetInterceptor installs (or clears, with nil) the fault-injection hook
// consulted once per delivery attempt.
func (c *Client) SetInterceptor(ic Interceptor) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.interceptor = ic
}

// BreakerState returns the circuit state ("closed", "open", "half-open")
// for an endpoint address (observability, tests).
func (c *Client) BreakerState(addr string) string {
	if c.breakers == nil {
		return "closed"
	}
	return c.breakers.stateOf(addr)
}

// Invoke implements Invoker for tcp references.
func (c *Client) Invoke(ref ObjectRef, op string, arg []byte) ([]byte, error) {
	if ref.Endpoint.Net != NetTCP {
		return nil, Errorf(CodeTransport, "client cannot reach %s endpoint %s", ref.Endpoint.Net, ref.Endpoint)
	}
	addr := ref.Endpoint.Addr
	var lastErr error
	for attempt := 0; attempt <= c.maxRetries; attempt++ {
		// The breaker check comes before any backoff sleep: a tripped
		// circuit fails the whole invocation fast, consuming neither a
		// retry-budget slot nor a backoff delay — that budget belongs to
		// attempts that actually reach the wire.
		if c.breakers != nil && !c.breakers.allow(addr) {
			return nil, Errorf(CodeTransport, "circuit open for %s", addr)
		}
		if attempt > 0 {
			c.sleep(c.backoff.Delay(addr, op, attempt))
		}
		reply, err := c.attempt(ref, op, arg)
		if c.breakers != nil {
			c.breakers.record(addr, err)
		}
		if err == nil || !Retryable(err) {
			return reply, err
		}
		lastErr = err
	}
	return nil, lastErr
}

// attempt performs one delivery attempt, routed through the interceptor.
func (c *Client) attempt(ref ObjectRef, op string, arg []byte) ([]byte, error) {
	c.mu.Lock()
	ic := c.interceptor
	c.mu.Unlock()
	next := func() ([]byte, error) { return c.exchange(ref, op, arg) }
	return deliver(ic, ref.Endpoint, ref.Key, op, arg, next)
}

// exchange sends one request over the pooled connection and awaits the
// reply, re-dialing once if the pooled connection proved stale.
func (c *Client) exchange(ref ObjectRef, op string, arg []byte) ([]byte, error) {
	for attempt := 0; ; attempt++ {
		cc, fresh, err := c.conn(ref.Endpoint.Addr)
		if err != nil {
			if isDeadlineErr(err) {
				return nil, Errorf(CodeTimeout, "dial %s: %v", ref.Endpoint.Addr, err)
			}
			return nil, Errorf(CodeTransport, "dial %s: %v", ref.Endpoint.Addr, err)
		}
		reply, err := cc.call(ref.Key, op, arg, c.callTimeout)
		if err != nil && IsCode(err, CodeTransport) && !fresh && attempt == 0 {
			c.drop(ref.Endpoint.Addr, cc)
			continue
		}
		return reply, err
	}
}

// Close tears down all pooled connections and waits for the client's
// background goroutines to exit.
func (c *Client) Close() {
	c.mu.Lock()
	conns := c.conns
	c.conns = make(map[string]*clientConn)
	c.mu.Unlock()
	for _, cc := range conns {
		cc.close()
	}
	c.wg.Wait()
}

// conn returns the pooled connection for addr, dialing if absent. fresh
// reports whether the connection was created by this call.
func (c *Client) conn(addr string) (*clientConn, bool, error) {
	c.mu.Lock()
	if cc, ok := c.conns[addr]; ok && !cc.isDead() {
		c.mu.Unlock()
		return cc, false, nil
	}
	c.mu.Unlock()

	netConn, err := net.DialTimeout("tcp", addr, c.dialTimeout)
	if err != nil {
		return nil, false, err
	}
	cc := newClientConn(netConn)

	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.conns[addr]; ok && !prev.isDead() {
		// Lost the race; use the winner and tear ours down in the
		// background (close blocks until the read loop exits).
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			cc.close()
		}()
		return prev, false, nil
	}
	c.conns[addr] = cc
	return cc, true, nil
}

func (c *Client) drop(addr string, cc *clientConn) {
	c.mu.Lock()
	if c.conns[addr] == cc {
		delete(c.conns, addr)
	}
	c.mu.Unlock()
	cc.close()
}

// isDeadlineErr reports whether err stems from an expired socket deadline.
func isDeadlineErr(err error) bool {
	if errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// callResult is what a waiting caller receives: a reply/error frame, or a
// locally synthesized error (send failure, connection loss — zero value).
type callResult struct {
	f   *frame
	err error
}

// replyChanPool recycles the per-call reply channels. A channel is pooled
// only on paths where the single possible send has already happened or is
// provably impossible (the pending entry was removed by this goroutine), so
// a pooled channel is always empty.
var replyChanPool = sync.Pool{New: func() any { return make(chan callResult, 1) }}

func getReplyChan() chan callResult { return replyChanPool.Get().(chan callResult) }

func putReplyChan(ch chan callResult) {
	select { // defensive drain; a pooled channel must be empty
	case <-ch:
	default:
	}
	replyChanPool.Put(ch)
}

// clientConn is one multiplexed connection: concurrent calls are assigned
// request IDs; a reader goroutine demultiplexes replies to waiting callers;
// a sender goroutine drains a send queue onto the socket, so N concurrent
// callers pipeline their requests instead of serializing write+flush under
// a mutex, and consecutive queued frames share one buffered-writer flush.
//
// Hung-peer defense is three-layered: the socket write deadline bounds a
// peer that stops draining its receive buffer; a call that times out having
// seen no frame at all since it was sent declares the connection wedged and
// kills it so the pool re-dials; and while calls are pending a read deadline
// of twice the largest pending budget is armed as a backstop, generous
// enough never to race the per-call timers.
type clientConn struct {
	conn   net.Conn
	writer *bufio.Writer // owned by sendLoop after construction

	// sendq feeds request frames to sendLoop; quit (closed by failAll)
	// unblocks enqueuers and stops the sender.
	sendq chan *frame
	quit  chan struct{}

	// mu guards nextID, frames, pending, budgets, dead and the watchdog
	// arming state. done is closed by readLoop on exit, senderDone by
	// sendLoop; both are otherwise written only at construction.
	mu         sync.Mutex
	nextID     uint64
	frames     uint64 // frames received, ever — progress marker
	pending    map[uint64]chan callResult
	budgets    map[uint64]time.Duration
	dead       bool
	done       chan struct{}
	senderDone chan struct{}

	// Watchdog arming state: maxBudget is an upper bound on every pending
	// budget (maintained incrementally, never lowered while calls remain),
	// armedAt/armedBudget describe the read deadline last pushed to the
	// socket. Kept so the hot path re-arms at most once per half-budget
	// instead of paying a SetReadDeadline syscall per register/complete.
	maxBudget   time.Duration
	armedAt     time.Time
	armedBudget time.Duration
}

// sendQueueDepth bounds how many requests may sit between callers and the
// socket. Deep enough to keep the pipeline full under burst, small enough
// that backpressure (a blocked enqueue) arrives before unbounded buffering.
const sendQueueDepth = 256

func newClientConn(conn net.Conn) *clientConn {
	cc := &clientConn{
		conn:       conn,
		writer:     bufio.NewWriter(conn),
		sendq:      make(chan *frame, sendQueueDepth),
		quit:       make(chan struct{}),
		pending:    make(map[uint64]chan callResult),
		budgets:    make(map[uint64]time.Duration),
		done:       make(chan struct{}),
		senderDone: make(chan struct{}),
	}
	go cc.readLoop()
	go cc.sendLoop()
	return cc
}

func (cc *clientConn) isDead() bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.dead
}

func (cc *clientConn) close() {
	cc.failAll()
	<-cc.done
	<-cc.senderDone
}

// armWatchdogLocked maintains the connection read deadline from the pending
// budgets: no pending calls clears it, otherwise a backstop deadline of
// twice the largest pending budget is armed — generous enough that the
// per-call timers always fire first, but bounding the read loop even if a
// caller abandons its timer.
//
// The deadline is refreshed lazily: a SetReadDeadline syscall is issued only
// when pending transitions empty↔nonempty, when a larger budget arrives, or
// when the armed window is half spent. The invariant the per-call timers
// rely on still holds: any pending call registered while armed fires its own
// timer at least half a budget before the socket deadline can.
func (cc *clientConn) armWatchdogLocked() {
	if len(cc.pending) == 0 {
		if cc.armedBudget != 0 {
			cc.armedBudget = 0
			cc.maxBudget = 0
			_ = cc.conn.SetReadDeadline(time.Time{})
		}
		return
	}
	b := cc.maxBudget
	if b <= 0 {
		return
	}
	if cc.armedBudget >= b && time.Since(cc.armedAt) <= b/2 {
		return
	}
	cc.armedAt = time.Now()
	cc.armedBudget = b
	_ = cc.conn.SetReadDeadline(cc.armedAt.Add(2 * b))
}

func (cc *clientConn) call(key, op string, arg []byte, budget time.Duration) ([]byte, error) {
	ch := getReplyChan()

	cc.mu.Lock()
	if cc.dead {
		cc.mu.Unlock()
		putReplyChan(ch)
		return nil, Errorf(CodeTransport, "connection closed")
	}
	cc.nextID++
	id := cc.nextID
	framesAtSend := cc.frames
	cc.pending[id] = ch
	cc.budgets[id] = budget
	if budget > cc.maxBudget {
		cc.maxBudget = budget
	}
	cc.armWatchdogLocked()
	cc.mu.Unlock()

	// Serialize here, not in the sender: the caller's arg buffer must not
	// be referenced once call can return (a timed-out caller may reuse it
	// while its frame still sits in the queue), and spreading encode work
	// across callers keeps the sender goroutine free to saturate the
	// socket. f.raw carries the ready-to-write bytes.
	e := GetEncoder()
	encodeFrame(e, &frame{kind: msgRequest, reqID: id, key: key, op: op, body: arg})
	f := getFrame()
	f.kind, f.reqID, f.key, f.op, f.budget = msgRequest, id, key, op, budget
	f.raw = e.Detach()
	PutEncoder(e)
	select {
	case cc.sendq <- f:
	case <-cc.quit:
		putFrame(f)
		if cc.forget(id) {
			putReplyChan(ch)
		}
		return nil, Errorf(CodeTransport, "connection closed")
	}

	timer := time.NewTimer(budget)
	defer timer.Stop()
	select {
	case r := <-ch:
		putReplyChan(ch)
		if r.err != nil {
			return nil, r.err
		}
		rf := r.f
		if rf == nil {
			return nil, Errorf(CodeTransport, "connection lost awaiting reply")
		}
		if rf.kind == msgError {
			err := &RemoteError{Code: rf.code, Msg: rf.msg}
			putFrame(rf)
			return nil, err
		}
		body := rf.detachBody()
		putFrame(rf)
		return body, nil
	case <-timer.C:
		if cc.forget(id) {
			// Nobody else saw the pending entry, so no send can follow:
			// the channel is provably idle and safe to pool.
			putReplyChan(ch)
		}
		// A full budget with no frame at all — not even a reply to some
		// other call — means the peer is wedged, not merely slow. Kill the
		// connection so the pool re-dials instead of caching it forever.
		if !cc.progressedSince(framesAtSend) {
			cc.failAll()
		}
		return nil, Errorf(CodeTimeout, "%s.%s timed out after %v", key, op, budget)
	}
}

// sendLoop is the connection's single writer: it drains the send queue onto
// the socket, arming the write deadline from each frame's call budget, and
// flushes the buffered writer only once the queue runs momentarily dry —
// one flush (and often one syscall) covers every frame coalesced behind it.
//
//lint:hotpath alloc=0 locks=0 block=1
func (cc *clientConn) sendLoop() {
	defer close(cc.senderDone)
	for {
		select {
		case f := <-cc.sendq:
			if !cc.writeBatch(f) {
				return
			}
		case <-cc.quit:
			return
		}
	}
}

// writeBatch writes first and every frame immediately queued behind it,
// then flushes. It reports whether the connection is still usable.
func (cc *clientConn) writeBatch(first *frame) bool {
	f := first
	// The write deadline bounds the socket writes by a pending call budget:
	// a peer that stops draining its receive buffer cannot wedge the sender
	// — and with it every queued call — forever. One deadline covers many
	// frames: it is re-armed only when half spent relative to the current
	// frame's budget, or more than twice that budget away — so a batch of
	// like-budget frames costs one syscall, while a frame whose write could
	// otherwise overrun (or prematurely trip) the armed deadline re-arms.
	var deadline time.Time
	for {
		if d := time.Now(); deadline.Before(d.Add(f.budget/2)) || deadline.After(d.Add(2*f.budget)) {
			deadline = d.Add(f.budget)
			_ = cc.conn.SetWriteDeadline(deadline)
		}
		_, err := cc.writer.Write(f.raw) // pre-serialized by call
		id, key, op, budget := f.reqID, f.key, f.op, f.budget
		putFrame(f)
		if err != nil {
			cc.failSend(id, key, op, budget, err)
			cc.failAll()
			return false
		}
		select {
		case f = <-cc.sendq:
			continue
		default:
		}
		break
	}
	if err := cc.writer.Flush(); err != nil {
		// The flush may carry several calls' frames; fail them all.
		cc.failAll()
		return false
	}
	return true
}

// failSend delivers a synthesized local error to the one call whose frame
// failed to write, preserving the pre-pipelining distinction between a
// write-deadline expiry (timeout) and a broken socket (transport).
//
//lint:coldpath write-failure handling, not the steady-state send path
func (cc *clientConn) failSend(id uint64, key, op string, budget time.Duration, err error) {
	var res callResult
	if isDeadlineErr(err) {
		res.err = Errorf(CodeTimeout, "send %s.%s: write deadline exceeded after %v", key, op, budget)
	} else {
		res.err = Errorf(CodeTransport, "send: %v", err)
	}
	cc.mu.Lock()
	ch, ok := cc.pending[id]
	if ok {
		delete(cc.pending, id)
		delete(cc.budgets, id)
		cc.armWatchdogLocked()
	}
	cc.mu.Unlock()
	if ok {
		ch <- res
	}
}

// progressedSince reports whether any frame arrived after the snapshot.
func (cc *clientConn) progressedSince(framesAtSend uint64) bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.frames != framesAtSend
}

// forget drops id's pending entry, reporting whether this call removed it —
// true guarantees no goroutine holds (or will send on) its reply channel.
func (cc *clientConn) forget(id uint64) bool {
	cc.mu.Lock()
	_, ok := cc.pending[id]
	if ok {
		delete(cc.pending, id)
		delete(cc.budgets, id)
		cc.armWatchdogLocked()
	}
	cc.mu.Unlock()
	return ok
}

func (cc *clientConn) readLoop() {
	defer close(cc.done)
	reader := bufio.NewReader(cc.conn)
	for {
		f, err := readFrame(reader)
		if err != nil {
			cc.failPending()
			return
		}
		cc.mu.Lock()
		cc.frames++
		ch, ok := cc.pending[f.reqID]
		if ok {
			delete(cc.pending, f.reqID)
			delete(cc.budgets, f.reqID)
		}
		// Any received frame is progress: re-arm the watchdog for whatever
		// is still pending.
		cc.armWatchdogLocked()
		cc.mu.Unlock()
		if ok {
			ch <- callResult{f: f}
		} else {
			putFrame(f) // late reply; its waiter already timed out
		}
	}
}

// failAll marks the connection dead, stops the sender and closes the
// socket; every pending call then fails.
//
//lint:coldpath connection teardown, not the steady-state send path
func (cc *clientConn) failAll() {
	cc.mu.Lock()
	alreadyDead := cc.dead
	cc.dead = true
	cc.mu.Unlock()
	if !alreadyDead {
		close(cc.quit)
		_ = cc.conn.Close()
	}
	// The read loop exits on conn close and drains pending via
	// failPending; nothing further to do here.
}

// failPending kills the connection (stopping the sender) and fails every
// pending call with a zero result ("connection lost"). Called by readLoop
// on its way out.
func (cc *clientConn) failPending() {
	cc.failAll()
	cc.mu.Lock()
	pending := cc.pending
	cc.pending = make(map[uint64]chan callResult)
	cc.budgets = make(map[uint64]time.Duration)
	cc.mu.Unlock()
	for _, ch := range pending {
		ch <- callResult{}
	}
}
