package orb

import (
	"bufio"
	"net"
	"sync"
	"time"
)

// Invoker sends a request to an object and waits for the reply. The ORB
// facade, the Loopback, and test fakes all implement it.
type Invoker interface {
	Invoke(ref ObjectRef, op string, arg []byte) ([]byte, error)
}

// Client invokes objects on remote TCP ORB servers. It maintains one
// multiplexed connection per endpoint, created lazily and re-dialed after
// failures. It is safe for concurrent use.
type Client struct {
	dialTimeout time.Duration
	callTimeout time.Duration

	// mu guards conns.
	mu    sync.Mutex
	conns map[string]*clientConn
	// wg tracks background teardown of superseded connections so Close can
	// wait for every goroutine the client started.
	wg sync.WaitGroup
}

var _ Invoker = (*Client)(nil)

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithDialTimeout sets the TCP dial timeout (default 5s).
func WithDialTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.dialTimeout = d }
}

// WithCallTimeout sets the per-invocation timeout (default 30s).
func WithCallTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.callTimeout = d }
}

// NewClient returns a Client ready to invoke.
func NewClient(opts ...ClientOption) *Client {
	c := &Client{
		dialTimeout: 5 * time.Second,
		callTimeout: 30 * time.Second,
		conns:       make(map[string]*clientConn),
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Invoke implements Invoker for tcp references.
func (c *Client) Invoke(ref ObjectRef, op string, arg []byte) ([]byte, error) {
	if ref.Endpoint.Net != NetTCP {
		return nil, Errorf(CodeTransport, "client cannot reach %s endpoint %s", ref.Endpoint.Net, ref.Endpoint)
	}
	// One reconnect attempt on a stale pooled connection.
	for attempt := 0; ; attempt++ {
		cc, fresh, err := c.conn(ref.Endpoint.Addr)
		if err != nil {
			return nil, Errorf(CodeTransport, "dial %s: %v", ref.Endpoint.Addr, err)
		}
		reply, err := cc.call(ref.Key, op, arg, c.callTimeout)
		if err != nil && IsCode(err, CodeTransport) && !fresh && attempt == 0 {
			c.drop(ref.Endpoint.Addr, cc)
			continue
		}
		return reply, err
	}
}

// Close tears down all pooled connections and waits for the client's
// background goroutines to exit.
func (c *Client) Close() {
	c.mu.Lock()
	conns := c.conns
	c.conns = make(map[string]*clientConn)
	c.mu.Unlock()
	for _, cc := range conns {
		cc.close()
	}
	c.wg.Wait()
}

// conn returns the pooled connection for addr, dialing if absent. fresh
// reports whether the connection was created by this call.
func (c *Client) conn(addr string) (*clientConn, bool, error) {
	c.mu.Lock()
	if cc, ok := c.conns[addr]; ok && !cc.isDead() {
		c.mu.Unlock()
		return cc, false, nil
	}
	c.mu.Unlock()

	netConn, err := net.DialTimeout("tcp", addr, c.dialTimeout)
	if err != nil {
		return nil, false, err
	}
	cc := newClientConn(netConn)

	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.conns[addr]; ok && !prev.isDead() {
		// Lost the race; use the winner and tear ours down in the
		// background (close blocks until the read loop exits).
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			cc.close()
		}()
		return prev, false, nil
	}
	c.conns[addr] = cc
	return cc, true, nil
}

func (c *Client) drop(addr string, cc *clientConn) {
	c.mu.Lock()
	if c.conns[addr] == cc {
		delete(c.conns, addr)
	}
	c.mu.Unlock()
	cc.close()
}

// clientConn is one multiplexed connection: concurrent calls are assigned
// request IDs; a reader goroutine demultiplexes replies to waiting callers.
type clientConn struct {
	conn   net.Conn
	writer *bufio.Writer

	// mu guards nextID, pending and dead, and serializes request frames
	// onto writer. done is closed by readLoop on exit and is otherwise
	// written only at construction.
	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan *frame
	dead    bool
	done    chan struct{}
}

func newClientConn(conn net.Conn) *clientConn {
	cc := &clientConn{
		conn:    conn,
		writer:  bufio.NewWriter(conn),
		pending: make(map[uint64]chan *frame),
		done:    make(chan struct{}),
	}
	go cc.readLoop()
	return cc
}

func (cc *clientConn) isDead() bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.dead
}

func (cc *clientConn) close() {
	cc.failAll()
	<-cc.done
}

func (cc *clientConn) call(key, op string, arg []byte, timeout time.Duration) ([]byte, error) {
	ch := make(chan *frame, 1)

	cc.mu.Lock()
	if cc.dead {
		cc.mu.Unlock()
		return nil, Errorf(CodeTransport, "connection closed")
	}
	cc.nextID++
	id := cc.nextID
	cc.pending[id] = ch
	err := writeFrame(cc.writer, &frame{kind: msgRequest, reqID: id, key: key, op: op, body: arg})
	if err == nil {
		err = cc.writer.Flush()
	}
	cc.mu.Unlock()

	if err != nil {
		cc.forget(id)
		cc.failAll()
		return nil, Errorf(CodeTransport, "send: %v", err)
	}

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case f := <-ch:
		if f == nil {
			return nil, Errorf(CodeTransport, "connection lost awaiting reply")
		}
		if f.kind == msgError {
			return nil, &RemoteError{Code: f.code, Msg: f.msg}
		}
		return f.body, nil
	case <-timer.C:
		cc.forget(id)
		return nil, Errorf(CodeTimeout, "%s.%s timed out after %v", key, op, timeout)
	}
}

func (cc *clientConn) forget(id uint64) {
	cc.mu.Lock()
	delete(cc.pending, id)
	cc.mu.Unlock()
}

func (cc *clientConn) readLoop() {
	defer close(cc.done)
	reader := bufio.NewReader(cc.conn)
	for {
		f, err := readFrame(reader)
		if err != nil {
			cc.failAllLocked()
			return
		}
		cc.mu.Lock()
		ch, ok := cc.pending[f.reqID]
		if ok {
			delete(cc.pending, f.reqID)
		}
		cc.mu.Unlock()
		if ok {
			ch <- f
		}
	}
}

// failAll marks the connection dead, closes it and fails every pending call.
func (cc *clientConn) failAll() {
	cc.mu.Lock()
	alreadyDead := cc.dead
	cc.dead = true
	cc.mu.Unlock()
	if !alreadyDead {
		_ = cc.conn.Close()
	}
	// The read loop exits on conn close and drains pending via
	// failAllLocked; nothing further to do here.
}

func (cc *clientConn) failAllLocked() {
	cc.mu.Lock()
	cc.dead = true
	pending := cc.pending
	cc.pending = make(map[uint64]chan *frame)
	cc.mu.Unlock()
	_ = cc.conn.Close()
	for _, ch := range pending {
		ch <- nil
	}
}
