package orb

import (
	"bufio"
	"errors"
	"net"
	"os"
	"sync"
	"time"
)

// Invoker sends a request to an object and waits for the reply. The ORB
// facade, the Loopback, and test fakes all implement it.
type Invoker interface {
	Invoke(ref ObjectRef, op string, arg []byte) ([]byte, error)
}

// Client invokes objects on remote TCP ORB servers. It maintains one
// multiplexed connection per endpoint, created lazily and re-dialed after
// failures. It is safe for concurrent use.
//
// Every call runs under a per-call budget (WithCallTimeout): the budget
// bounds the dial, the socket write, and the reply wait, so a hung peer can
// never block Invoke indefinitely. Failures are classified by Retryable;
// with WithRetries the client re-sends retryable failures under capped
// exponential backoff with deterministic jitter, and WithBreaker adds a
// per-endpoint circuit breaker that fails fast while an endpoint is down.
type Client struct {
	dialTimeout time.Duration
	callTimeout time.Duration
	maxRetries  int
	backoff     BackoffPolicy
	breakers    *breakerSet
	sleep       func(time.Duration) // pacing hook, replaceable in tests

	// mu guards conns and interceptor.
	mu          sync.Mutex
	conns       map[string]*clientConn
	interceptor Interceptor
	// wg tracks background teardown of superseded connections so Close can
	// wait for every goroutine the client started.
	wg sync.WaitGroup
}

var _ Invoker = (*Client)(nil)

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithDialTimeout sets the TCP dial timeout (default 5s).
func WithDialTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.dialTimeout = d }
}

// WithCallTimeout sets the per-invocation budget (default 30s). The budget
// covers the write and the reply wait of one delivery attempt.
func WithCallTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.callTimeout = d }
}

// WithRetries allows up to n additional delivery attempts after a retryable
// failure (default 0: fail on the first error, preserving at-most-once
// semantics for non-idempotent operations).
func WithRetries(n int) ClientOption {
	return func(c *Client) { c.maxRetries = n }
}

// WithBackoff sets the retry pacing policy (default DefaultBackoff).
func WithBackoff(p BackoffPolicy) ClientOption {
	return func(c *Client) { c.backoff = p }
}

// WithBreaker enables the per-endpoint circuit breaker.
func WithBreaker(p BreakerPolicy) ClientOption {
	return func(c *Client) {
		if p.Threshold > 0 {
			c.breakers = newBreakerSet(p, time.Now)
		}
	}
}

// NewClient returns a Client ready to invoke.
func NewClient(opts ...ClientOption) *Client {
	c := &Client{
		dialTimeout: 5 * time.Second,
		callTimeout: 30 * time.Second,
		backoff:     DefaultBackoff,
		sleep:       time.Sleep,
		conns:       make(map[string]*clientConn),
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// SetInterceptor installs (or clears, with nil) the fault-injection hook
// consulted once per delivery attempt.
func (c *Client) SetInterceptor(ic Interceptor) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.interceptor = ic
}

// BreakerState returns the circuit state ("closed", "open", "half-open")
// for an endpoint address (observability, tests).
func (c *Client) BreakerState(addr string) string {
	if c.breakers == nil {
		return "closed"
	}
	return c.breakers.stateOf(addr)
}

// Invoke implements Invoker for tcp references.
func (c *Client) Invoke(ref ObjectRef, op string, arg []byte) ([]byte, error) {
	if ref.Endpoint.Net != NetTCP {
		return nil, Errorf(CodeTransport, "client cannot reach %s endpoint %s", ref.Endpoint.Net, ref.Endpoint)
	}
	addr := ref.Endpoint.Addr
	var lastErr error
	for attempt := 0; attempt <= c.maxRetries; attempt++ {
		if attempt > 0 {
			c.sleep(c.backoff.Delay(addr, op, attempt))
		}
		if c.breakers != nil && !c.breakers.allow(addr) {
			lastErr = Errorf(CodeTransport, "circuit open for %s", addr)
			continue
		}
		reply, err := c.attempt(ref, op, arg)
		if c.breakers != nil {
			c.breakers.record(addr, err)
		}
		if err == nil || !Retryable(err) {
			return reply, err
		}
		lastErr = err
	}
	return nil, lastErr
}

// attempt performs one delivery attempt, routed through the interceptor.
func (c *Client) attempt(ref ObjectRef, op string, arg []byte) ([]byte, error) {
	c.mu.Lock()
	ic := c.interceptor
	c.mu.Unlock()
	next := func() ([]byte, error) { return c.exchange(ref, op, arg) }
	return deliver(ic, ref.Endpoint, ref.Key, op, arg, next)
}

// exchange sends one request over the pooled connection and awaits the
// reply, re-dialing once if the pooled connection proved stale.
func (c *Client) exchange(ref ObjectRef, op string, arg []byte) ([]byte, error) {
	for attempt := 0; ; attempt++ {
		cc, fresh, err := c.conn(ref.Endpoint.Addr)
		if err != nil {
			if isDeadlineErr(err) {
				return nil, Errorf(CodeTimeout, "dial %s: %v", ref.Endpoint.Addr, err)
			}
			return nil, Errorf(CodeTransport, "dial %s: %v", ref.Endpoint.Addr, err)
		}
		reply, err := cc.call(ref.Key, op, arg, c.callTimeout)
		if err != nil && IsCode(err, CodeTransport) && !fresh && attempt == 0 {
			c.drop(ref.Endpoint.Addr, cc)
			continue
		}
		return reply, err
	}
}

// Close tears down all pooled connections and waits for the client's
// background goroutines to exit.
func (c *Client) Close() {
	c.mu.Lock()
	conns := c.conns
	c.conns = make(map[string]*clientConn)
	c.mu.Unlock()
	for _, cc := range conns {
		cc.close()
	}
	c.wg.Wait()
}

// conn returns the pooled connection for addr, dialing if absent. fresh
// reports whether the connection was created by this call.
func (c *Client) conn(addr string) (*clientConn, bool, error) {
	c.mu.Lock()
	if cc, ok := c.conns[addr]; ok && !cc.isDead() {
		c.mu.Unlock()
		return cc, false, nil
	}
	c.mu.Unlock()

	netConn, err := net.DialTimeout("tcp", addr, c.dialTimeout)
	if err != nil {
		return nil, false, err
	}
	cc := newClientConn(netConn)

	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.conns[addr]; ok && !prev.isDead() {
		// Lost the race; use the winner and tear ours down in the
		// background (close blocks until the read loop exits).
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			cc.close()
		}()
		return prev, false, nil
	}
	c.conns[addr] = cc
	return cc, true, nil
}

func (c *Client) drop(addr string, cc *clientConn) {
	c.mu.Lock()
	if c.conns[addr] == cc {
		delete(c.conns, addr)
	}
	c.mu.Unlock()
	cc.close()
}

// isDeadlineErr reports whether err stems from an expired socket deadline.
func isDeadlineErr(err error) bool {
	if errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// clientConn is one multiplexed connection: concurrent calls are assigned
// request IDs; a reader goroutine demultiplexes replies to waiting callers.
//
// Hung-peer defense is three-layered: the socket write deadline bounds a
// peer that stops draining its receive buffer; a call that times out having
// seen no frame at all since it was sent declares the connection wedged and
// kills it so the pool re-dials; and while calls are pending a read deadline
// of twice the largest pending budget is armed as a backstop, generous
// enough never to race the per-call timers.
type clientConn struct {
	conn   net.Conn
	writer *bufio.Writer

	// mu guards nextID, frames, pending, budgets and dead, and serializes
	// request frames onto writer. done is closed by readLoop on exit and is
	// otherwise written only at construction.
	mu      sync.Mutex
	nextID  uint64
	frames  uint64 // frames received, ever — progress marker
	pending map[uint64]chan *frame
	budgets map[uint64]time.Duration
	dead    bool
	done    chan struct{}
}

func newClientConn(conn net.Conn) *clientConn {
	cc := &clientConn{
		conn:    conn,
		writer:  bufio.NewWriter(conn),
		pending: make(map[uint64]chan *frame),
		budgets: make(map[uint64]time.Duration),
		done:    make(chan struct{}),
	}
	go cc.readLoop()
	return cc
}

func (cc *clientConn) isDead() bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.dead
}

func (cc *clientConn) close() {
	cc.failAll()
	<-cc.done
}

// armWatchdogLocked (re)sets the connection read deadline from the pending
// budgets: no pending calls clears it, otherwise a backstop deadline of
// twice the largest pending budget is armed — generous enough that the
// per-call timers always fire first, but bounding the read loop even if a
// caller abandons its timer.
func (cc *clientConn) armWatchdogLocked() {
	var budget time.Duration
	for _, b := range cc.budgets {
		if b > budget {
			budget = b
		}
	}
	if budget <= 0 {
		_ = cc.conn.SetReadDeadline(time.Time{})
		return
	}
	_ = cc.conn.SetReadDeadline(time.Now().Add(2 * budget))
}

func (cc *clientConn) call(key, op string, arg []byte, budget time.Duration) ([]byte, error) {
	ch := make(chan *frame, 1)

	cc.mu.Lock()
	if cc.dead {
		cc.mu.Unlock()
		return nil, Errorf(CodeTransport, "connection closed")
	}
	cc.nextID++
	id := cc.nextID
	framesAtSend := cc.frames
	cc.pending[id] = ch
	cc.budgets[id] = budget
	cc.armWatchdogLocked()
	// The write deadline bounds the socket write by the call budget: a peer
	// that stops draining its receive buffer cannot wedge this call — or
	// every later call serialized on mu — forever.
	_ = cc.conn.SetWriteDeadline(time.Now().Add(budget))
	err := writeFrame(cc.writer, &frame{kind: msgRequest, reqID: id, key: key, op: op, body: arg})
	if err == nil {
		err = cc.writer.Flush()
	}
	cc.mu.Unlock()

	if err != nil {
		cc.forget(id)
		cc.failAll()
		if isDeadlineErr(err) {
			return nil, Errorf(CodeTimeout, "send %s.%s: write deadline exceeded after %v", key, op, budget)
		}
		return nil, Errorf(CodeTransport, "send: %v", err)
	}

	timer := time.NewTimer(budget)
	defer timer.Stop()
	select {
	case f := <-ch:
		if f == nil {
			return nil, Errorf(CodeTransport, "connection lost awaiting reply")
		}
		if f.kind == msgError {
			return nil, &RemoteError{Code: f.code, Msg: f.msg}
		}
		return f.body, nil
	case <-timer.C:
		cc.forget(id)
		// A full budget with no frame at all — not even a reply to some
		// other call — means the peer is wedged, not merely slow. Kill the
		// connection so the pool re-dials instead of caching it forever.
		if !cc.progressedSince(framesAtSend) {
			cc.failAll()
		}
		return nil, Errorf(CodeTimeout, "%s.%s timed out after %v", key, op, budget)
	}
}

// progressedSince reports whether any frame arrived after the snapshot.
func (cc *clientConn) progressedSince(framesAtSend uint64) bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.frames != framesAtSend
}

func (cc *clientConn) forget(id uint64) {
	cc.mu.Lock()
	delete(cc.pending, id)
	delete(cc.budgets, id)
	cc.armWatchdogLocked()
	cc.mu.Unlock()
}

func (cc *clientConn) readLoop() {
	defer close(cc.done)
	reader := bufio.NewReader(cc.conn)
	for {
		f, err := readFrame(reader)
		if err != nil {
			cc.failAllLocked()
			return
		}
		cc.mu.Lock()
		cc.frames++
		ch, ok := cc.pending[f.reqID]
		if ok {
			delete(cc.pending, f.reqID)
			delete(cc.budgets, f.reqID)
		}
		// Any received frame is progress: re-arm the watchdog for whatever
		// is still pending.
		cc.armWatchdogLocked()
		cc.mu.Unlock()
		if ok {
			ch <- f
		}
	}
}

// failAll marks the connection dead, closes it and fails every pending call.
func (cc *clientConn) failAll() {
	cc.mu.Lock()
	alreadyDead := cc.dead
	cc.dead = true
	cc.mu.Unlock()
	if !alreadyDead {
		_ = cc.conn.Close()
	}
	// The read loop exits on conn close and drains pending via
	// failAllLocked; nothing further to do here.
}

func (cc *clientConn) failAllLocked() {
	cc.mu.Lock()
	cc.dead = true
	pending := cc.pending
	cc.pending = make(map[uint64]chan *frame)
	cc.budgets = make(map[uint64]time.Duration)
	cc.mu.Unlock()
	_ = cc.conn.Close()
	for _, ch := range pending {
		ch <- nil
	}
}
