package orb

import (
	"fmt"
	"sort"
	"sync"
)

// Servant handles invocations on one object. Implementations decode the
// request body from req, perform the operation and write the reply with the
// returned encoder. Returning an error produces an error reply; returning a
// *RemoteError preserves its code, any other error is wrapped as
// CodeApplication.
type Servant interface {
	Dispatch(op string, req *Decoder) (*Encoder, error)
}

// ServantFunc adapts a function to the Servant interface.
type ServantFunc func(op string, req *Decoder) (*Encoder, error)

// Dispatch implements Servant.
func (f ServantFunc) Dispatch(op string, req *Decoder) (*Encoder, error) {
	return f(op, req)
}

// OpMux is a Servant that routes operations by name, the common way to
// implement multi-operation interfaces.
type OpMux struct {
	// mu guards ops.
	mu  sync.RWMutex
	ops map[string]ServantFunc
}

// NewOpMux returns an empty operation multiplexer.
func NewOpMux() *OpMux {
	return &OpMux{ops: make(map[string]ServantFunc)}
}

// Handle registers fn for the named operation, replacing any previous
// handler.
func (m *OpMux) Handle(op string, fn ServantFunc) *OpMux {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ops[op] = fn
	return m
}

// Dispatch implements Servant.
func (m *OpMux) Dispatch(op string, req *Decoder) (*Encoder, error) {
	m.mu.RLock()
	fn, ok := m.ops[op]
	m.mu.RUnlock()
	if !ok {
		return nil, Errorf(CodeBadOperation, "no such operation %q", op)
	}
	return fn(op, req)
}

// Adapter is the object adapter: it owns the key → servant table of one ORB
// server. It is safe for concurrent use.
type Adapter struct {
	// mu guards servants.
	mu       sync.RWMutex
	servants map[string]Servant
}

// NewAdapter returns an empty Adapter.
func NewAdapter() *Adapter {
	return &Adapter{servants: make(map[string]Servant)}
}

// Register binds a servant to an object key. Registering an existing key
// returns an error; use Deactivate first to replace a servant.
func (a *Adapter) Register(key string, s Servant) error {
	if key == "" {
		return fmt.Errorf("orb: empty object key")
	}
	if s == nil {
		return fmt.Errorf("orb: nil servant for key %q", key)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, exists := a.servants[key]; exists {
		return fmt.Errorf("orb: object key %q already registered", key)
	}
	a.servants[key] = s
	return nil
}

// Deactivate removes the servant bound to key, if any. It reports whether a
// servant was removed.
func (a *Adapter) Deactivate(key string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.servants[key]; !ok {
		return false
	}
	delete(a.servants, key)
	return true
}

// Keys returns the registered object keys in sorted order.
func (a *Adapter) Keys() []string {
	a.mu.RLock()
	defer a.mu.RUnlock()
	keys := make([]string, 0, len(a.servants))
	for k := range a.servants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// dispatch routes one request to its servant and normalizes errors into
// RemoteErrors. It recovers servant panics so a buggy servant cannot take
// down the server.
func (a *Adapter) dispatch(key, op string, body []byte) (reply []byte, err error) {
	a.mu.RLock()
	s, ok := a.servants[key]
	a.mu.RUnlock()
	if !ok {
		return nil, Errorf(CodeObjectNotExist, "no object %q", key)
	}
	defer func() {
		if r := recover(); r != nil {
			err = Errorf(CodeApplication, "servant panic in %s.%s: %v", key, op, r)
		}
	}()
	enc, err := s.Dispatch(op, NewDecoder(body))
	if err != nil {
		if re, ok := err.(*RemoteError); ok {
			return nil, re
		}
		return nil, &RemoteError{Code: CodeApplication, Msg: err.Error()}
	}
	if enc == nil {
		return nil, nil
	}
	return enc.Bytes(), nil
}
