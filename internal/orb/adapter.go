package orb

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Servant handles invocations on one object. Implementations decode the
// request body from req, perform the operation and write the reply with the
// returned encoder. Returning an error produces an error reply; returning a
// *RemoteError preserves its code, any other error is wrapped as
// CodeApplication.
//
// Ownership contract (DESIGN.md §13): req and its buffer belong to the ORB —
// a servant must treat them as read-only and must not retain them (or any
// RawBytes/RawString slice) past the Dispatch call. The returned Encoder
// transfers to the ORB on return: build it fresh per call (GetEncoder for a
// pooled one) and do not touch it afterwards. These rules are what let the
// transports skip defensive copies and recycle buffers on the hot path.
type Servant interface {
	Dispatch(op string, req *Decoder) (*Encoder, error)
}

// ServantFunc adapts a function to the Servant interface.
type ServantFunc func(op string, req *Decoder) (*Encoder, error)

// Dispatch implements Servant.
func (f ServantFunc) Dispatch(op string, req *Decoder) (*Encoder, error) {
	return f(op, req)
}

// OpMux is a Servant that routes operations by name, the common way to
// implement multi-operation interfaces. The operation table is copy-on-write:
// Dispatch reads one atomic snapshot, Handle copies and swaps under mu —
// registration happens at setup, dispatch on the hot path.
type OpMux struct {
	// mu serializes writers of ops.
	//lint:guards ops
	mu  sync.Mutex
	ops atomic.Pointer[map[string]ServantFunc]
}

// NewOpMux returns an empty operation multiplexer.
func NewOpMux() *OpMux {
	m := &OpMux{}
	ops := make(map[string]ServantFunc)
	m.ops.Store(&ops)
	return m
}

// Handle registers fn for the named operation, replacing any previous
// handler.
func (m *OpMux) Handle(op string, fn ServantFunc) *OpMux {
	m.mu.Lock()
	defer m.mu.Unlock()
	old := *m.ops.Load()
	next := make(map[string]ServantFunc, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[op] = fn
	m.ops.Store(&next)
	return m
}

// Dispatch implements Servant.
//
//lint:hotpath alloc=0 locks=0 block=0
func (m *OpMux) Dispatch(op string, req *Decoder) (*Encoder, error) {
	fn, ok := (*m.ops.Load())[op]
	if !ok {
		return nil, Errorf(CodeBadOperation, "no such operation %q", op)
	}
	return fn(op, req)
}

// Adapter is the object adapter: it owns the key → servant table of one ORB
// server. It is safe for concurrent use. Like OpMux, the table is
// copy-on-write so dispatch pays one atomic load instead of a lock.
type Adapter struct {
	// mu serializes writers of servants.
	//lint:guards servants
	mu       sync.Mutex
	servants atomic.Pointer[map[string]Servant]
}

// NewAdapter returns an empty Adapter.
func NewAdapter() *Adapter {
	a := &Adapter{}
	servants := make(map[string]Servant)
	a.servants.Store(&servants)
	return a
}

// Register binds a servant to an object key. Registering an existing key
// returns an error; use Deactivate first to replace a servant.
func (a *Adapter) Register(key string, s Servant) error {
	if key == "" {
		return fmt.Errorf("orb: empty object key")
	}
	if s == nil {
		return fmt.Errorf("orb: nil servant for key %q", key)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	old := *a.servants.Load()
	if _, exists := old[key]; exists {
		return fmt.Errorf("orb: object key %q already registered", key)
	}
	next := make(map[string]Servant, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[key] = s
	a.servants.Store(&next)
	return nil
}

// Deactivate removes the servant bound to key, if any. It reports whether a
// servant was removed.
func (a *Adapter) Deactivate(key string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	old := *a.servants.Load()
	if _, ok := old[key]; !ok {
		return false
	}
	next := make(map[string]Servant, len(old))
	for k, v := range old {
		if k != key {
			next[k] = v
		}
	}
	a.servants.Store(&next)
	return true
}

// Keys returns the registered object keys in sorted order.
func (a *Adapter) Keys() []string {
	servants := *a.servants.Load()
	keys := make([]string, 0, len(servants))
	for k := range servants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// dispatch routes one request to its servant and returns the reply bytes.
// The returned slice is owned by the caller (the servant's reply buffer is
// detached, its encoder recycled).
func (a *Adapter) dispatch(key, op string, body []byte) ([]byte, error) {
	enc, err := a.dispatchEnc(key, op, body)
	if err != nil || enc == nil {
		return nil, err
	}
	reply := enc.Detach()
	PutEncoder(enc)
	return reply, nil
}

// dispatchEnc routes one request to its servant and normalizes errors into
// RemoteErrors. It recovers servant panics so a buggy servant cannot take
// down the server. The returned encoder is owned by the caller, who recycles
// it (after Detach, if the reply bytes outlive it) — this is what lets the
// TCP server serve a request with zero reply-buffer allocations.
func (a *Adapter) dispatchEnc(key, op string, body []byte) (enc *Encoder, err error) {
	s, ok := (*a.servants.Load())[key]
	if !ok {
		return nil, Errorf(CodeObjectNotExist, "no object %q", key)
	}
	defer func() { //lint:alloc panic guard; open-coded defer keeps it off the heap
		if r := recover(); r != nil {
			enc = nil
			err = Errorf(CodeApplication, "servant panic in %s.%s: %v", key, op, r)
		}
	}()
	req := getDecoder(body)
	enc, err = s.Dispatch(op, req)
	putDecoder(req)
	if err != nil {
		PutEncoder(enc) // ownership transferred even on error; recycle
		if re, ok := err.(*RemoteError); ok {
			return nil, re
		}
		return nil, &RemoteError{Code: CodeApplication, Msg: err.Error()} //lint:alloc error slow path
	}
	return enc, nil
}
