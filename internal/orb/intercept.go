package orb

// Interceptor is the single fault-injection and observation hook shared by
// every ORB transport. Both the in-process Loopback and the TCP Client
// consult the installed interceptor once per delivery attempt, so a fault
// engine (internal/chaos) injects message drop, delay and duplication
// through one code path regardless of how a reference is reached.
//
// next performs the actual delivery (adapter dispatch for loopback, a
// framed request/reply exchange for TCP) and may be called zero times (drop),
// once (normal delivery), or more than once / asynchronously (duplication,
// delayed redelivery). Implementations must be safe for concurrent use and
// must not hold locks across the next call.
type Interceptor interface {
	Intercept(target Endpoint, key, op string, arg []byte, next func() ([]byte, error)) ([]byte, error)
}

// deliver routes one delivery attempt through ic when installed.
func deliver(ic Interceptor, target Endpoint, key, op string, arg []byte, next func() ([]byte, error)) ([]byte, error) {
	if ic == nil {
		return next()
	}
	return ic.Intercept(target, key, op, arg, next)
}

// faultPolicyInterceptor adapts the legacy Loopback fault hook — a
// drop-or-deliver predicate — onto the shared Interceptor code path.
type faultPolicyInterceptor struct {
	policy FaultPolicy
}

// Intercept implements Interceptor.
func (f faultPolicyInterceptor) Intercept(target Endpoint, key, op string, _ []byte, next func() ([]byte, error)) ([]byte, error) {
	if err := f.policy(target, key, op); err != nil {
		return nil, err
	}
	return next()
}
