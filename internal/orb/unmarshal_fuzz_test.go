package orb

import (
	"bytes"
	"math"
	"testing"
	"time"
)

// Decode opcodes for the interpretive fuzzer below. The program drives the
// Decoder through arbitrary Get sequences, mirroring how servants decode
// CDR-like request bodies field by field.
const (
	opU8 = iota
	opBool
	opU32
	opU64
	opI64
	opInt
	opF64
	opString
	opBytes
	opTime
	opDuration
	opStrings
	numOps
)

// captureFrame encodes fr exactly as the wire protocol does and returns the
// unframed message bytes (what a Decoder sees).
func captureFrame(fr *frame) []byte {
	var b bytes.Buffer
	if err := writeFrame(&b, fr); err != nil {
		panic(err)
	}
	return b.Bytes()[4:] // strip the u32 length prefix
}

// seedProgram prefixes payload with a decode program.
func seedProgram(ops []byte, payload []byte) []byte {
	out := []byte{byte(len(ops))}
	out = append(out, ops...)
	return append(out, payload...)
}

// FuzzUnmarshal drives the ORB's CDR-like Decoder with arbitrary decode
// programs over arbitrary payloads (seeded with captured wire frames) and
// checks the decoder's contracts:
//
//   - no Get sequence panics, whatever the input;
//   - Remaining never goes negative and never grows;
//   - the first error is sticky: later Gets return zero values and do not
//     change Err;
//   - values decoded before any error re-encode and re-decode to the same
//     values (Encoder/Decoder round-trip).
func FuzzUnmarshal(f *testing.F) {
	// Captured wire frames as corpus seeds, with programs that mirror how
	// readFrame actually walks them.
	reqProgram := []byte{opU32, opU8, opU8, opU64, opString, opString, opBytes}
	req := captureFrame(&frame{kind: msgRequest, reqID: 42, key: "grm", op: "update", body: []byte("status")})
	f.Add(seedProgram(reqProgram, req))
	errProgram := []byte{opU32, opU8, opU8, opU64, opU32, opString, opBytes}
	errFrame := captureFrame(&frame{kind: msgError, reqID: 7, code: CodeTimeout, msg: "deadline", body: nil})
	f.Add(seedProgram(errProgram, errFrame))

	// A typed body covering every opcode.
	var e Encoder
	e.PutU8(9)
	e.PutBool(true)
	e.PutU32(1 << 20)
	e.PutU64(1 << 40)
	e.PutI64(-5)
	e.PutInt(12345)
	e.PutF64(math.Pi)
	e.PutString("node-17")
	e.PutBytes([]byte{0, 1, 2})
	e.PutTime(time.Date(2026, time.January, 5, 8, 30, 0, 999, time.UTC))
	e.PutDuration(90 * time.Second)
	e.PutStrings([]string{"a", "bb"})
	all := []byte{opU8, opBool, opU32, opU64, opI64, opInt, opF64, opString, opBytes, opTime, opDuration, opStrings}
	f.Add(seedProgram(all, e.Bytes()))

	// Degenerate inputs.
	f.Add([]byte{})
	f.Add([]byte{4, opString, opStrings, opBytes, opTime, 0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		n := int(data[0]) % 24
		if 1+n > len(data) {
			n = len(data) - 1
		}
		program := data[1 : 1+n]
		payload := data[1+n:]

		d := NewDecoder(payload)
		values, consumed := runProgram(t, d, program)

		// Round-trip: re-encode the successfully decoded prefix and decode
		// it again with the same program prefix.
		var re Encoder
		encodeValues(&re, values)
		d2 := NewDecoder(re.Bytes())
		values2, _ := runProgram(t, d2, program[:consumed])
		if err := d2.Err(); err != nil {
			t.Fatalf("re-decoding re-encoded values failed: %v", err)
		}
		if len(values2) != len(values) {
			t.Fatalf("round-trip decoded %d values, want %d", len(values2), len(values))
		}
		for i := range values {
			if !valueEqual(values[i], values2[i]) {
				t.Fatalf("round-trip value %d: got %#v, want %#v", i, values2[i], values[i])
			}
		}
	})
}

// runProgram executes decode ops until the first error, checking Decoder
// invariants. It returns the successfully decoded values and how many ops
// completed without error.
func runProgram(t *testing.T, d *Decoder, program []byte) ([]any, int) {
	t.Helper()
	prevRemaining := d.Remaining()
	if prevRemaining < 0 {
		t.Fatalf("negative Remaining at start: %d", prevRemaining)
	}
	var values []any
	for i, op := range program {
		var v any
		switch op % numOps {
		case opU8:
			v = d.U8()
		case opBool:
			v = d.Bool()
		case opU32:
			v = d.U32()
		case opU64:
			v = d.U64()
		case opI64:
			v = d.I64()
		case opInt:
			v = d.Int()
		case opF64:
			v = d.F64()
		case opString:
			v = d.String()
		case opBytes:
			v = d.Bytes()
		case opTime:
			v = d.Time()
		case opDuration:
			v = d.Duration()
		case opStrings:
			v = d.Strings()
		}
		r := d.Remaining()
		if r < 0 || r > prevRemaining {
			t.Fatalf("Remaining went from %d to %d after op %d", prevRemaining, r, op%numOps)
		}
		prevRemaining = r
		if err := d.Err(); err != nil {
			// Sticky error: further reads must return zero values and must
			// not change the error.
			if got := d.U64(); got != 0 {
				t.Fatalf("read after error returned %d, want 0", got)
			}
			if d.Err() != err {
				t.Fatalf("error not sticky: %v then %v", err, d.Err())
			}
			return values, i
		}
		values = append(values, v)
	}
	return values, len(program)
}

// encodeValues writes decoded values back through the Encoder.
func encodeValues(e *Encoder, values []any) {
	for _, v := range values {
		switch x := v.(type) {
		case uint8:
			e.PutU8(x)
		case bool:
			e.PutBool(x)
		case uint32:
			e.PutU32(x)
		case uint64:
			e.PutU64(x)
		case int64:
			e.PutI64(x)
		case int:
			e.PutInt(x)
		case float64:
			e.PutF64(x)
		case string:
			e.PutString(x)
		case []byte:
			e.PutBytes(x)
		case time.Time:
			e.PutTime(x)
		case time.Duration:
			e.PutDuration(x)
		case []string:
			e.PutStrings(x)
		}
	}
}

// valueEqual compares decoded values, treating NaN as equal to itself and
// nil slices as equal to empty ones (Bytes/Strings return copies).
func valueEqual(a, b any) bool {
	switch x := a.(type) {
	case float64:
		y, ok := b.(float64)
		if !ok {
			return false
		}
		return math.Float64bits(x) == math.Float64bits(y) || (math.IsNaN(x) && math.IsNaN(y))
	case time.Time:
		y, ok := b.(time.Time)
		return ok && x.Equal(y)
	case []byte:
		y, ok := b.([]byte)
		return ok && bytes.Equal(x, y)
	case []string:
		y, ok := b.([]string)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	default:
		return a == b
	}
}
