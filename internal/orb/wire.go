// Package orb implements InteGrade's lightweight object request broker — the
// stand-in for the CORBA substrate the paper builds on (UIC-CORBA on client
// nodes, JacORB on the cluster manager). It provides:
//
//   - a compact binary wire encoding (Encoder/Decoder), analogous to CDR;
//   - object references naming a transport endpoint plus an object key,
//     analogous to IORs;
//   - an object adapter dispatching operations to registered servants;
//   - a TCP transport with connection reuse and request multiplexing, and an
//     in-process loopback transport (with optional fault injection) that the
//     simulator uses for deterministic large-scale experiments.
//
// Higher-level CORBA-like services (Naming, Trading) live in their own
// packages and are ordinary servants on this ORB.
package orb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"
)

// Wire-format limits. Oversized values indicate corruption or abuse.
const (
	// MaxStringLen bounds decoded string and byte-slice lengths.
	MaxStringLen = 16 << 20
	// MaxSliceLen bounds decoded element counts.
	MaxSliceLen = 1 << 20
)

// ErrTruncated is returned by Decoder reads past the end of the buffer.
var ErrTruncated = errors.New("orb: truncated message")

// Encoder serializes primitive values into a growable buffer. The zero value
// is ready to use.
type Encoder struct {
	buf []byte
}

// Bytes returns the encoded buffer. The slice aliases the encoder's internal
// storage; callers must not retain it across further Put calls.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of encoded bytes.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset clears the buffer, retaining capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Grow ensures capacity for n more bytes, so a servant that knows its reply
// size builds it with at most one allocation instead of append's growth
// sequence — this matters on the hot path because Detach hands the buffer
// away, leaving the pooled encoder to regrow from nil.
func (e *Encoder) Grow(n int) {
	if cap(e.buf)-len(e.buf) >= n {
		return
	}
	buf := make([]byte, len(e.buf), len(e.buf)+n)
	copy(buf, e.buf)
	e.buf = buf
}

// Detach returns the encoded buffer and releases the encoder's ownership of
// it: after Detach the encoder is empty and may be pooled with PutEncoder
// while the returned slice lives on. This is how the hot path hands a reply
// body to a caller that retains it without copying.
func (e *Encoder) Detach() []byte {
	b := e.buf
	e.buf = nil
	return b
}

// maxPooledBuf bounds the capacity of buffers kept by the wire pools. A
// rare giant frame must not pin megabytes inside a sync.Pool forever.
const maxPooledBuf = 64 << 10

var encoderPool = sync.Pool{New: func() any { return new(Encoder) }}

// GetEncoder returns an empty Encoder from the pool. The hot path — frame
// serialization, servants building replies — uses pooled encoders so a
// steady-state invocation performs no encoder allocations. Pair with
// PutEncoder; see DESIGN.md §13 for the ownership rules.
func GetEncoder() *Encoder {
	e := encoderPool.Get().(*Encoder)
	e.Reset()
	return e
}

// PutEncoder returns e to the pool. The caller must not use e or any slice
// obtained from e.Bytes afterwards (Detach first to keep the buffer).
// Oversized buffers are dropped rather than pooled.
func PutEncoder(e *Encoder) {
	if e == nil || cap(e.buf) > maxPooledBuf {
		return
	}
	e.Reset()
	encoderPool.Put(e)
}

var decoderPool = sync.Pool{New: func() any { return new(Decoder) }}

// getDecoder returns a pooled Decoder positioned at the start of buf.
func getDecoder(buf []byte) *Decoder {
	d := decoderPool.Get().(*Decoder)
	d.buf, d.off, d.err = buf, 0, nil
	return d
}

// putDecoder releases d to the pool, dropping its buffer reference.
func putDecoder(d *Decoder) {
	d.buf, d.off, d.err = nil, 0, nil
	decoderPool.Put(d)
}

// PutU8 appends a byte.
//
//lint:hotpath alloc=1
func (e *Encoder) PutU8(v uint8) { e.buf = append(e.buf, v) }

// PutBool appends a boolean as one byte.
func (e *Encoder) PutBool(v bool) {
	if v {
		e.PutU8(1)
	} else {
		e.PutU8(0)
	}
}

// PutU32 appends a big-endian uint32.
//
//lint:hotpath alloc=1
func (e *Encoder) PutU32(v uint32) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, v)
}

// PutU64 appends a big-endian uint64.
//
//lint:hotpath alloc=1
func (e *Encoder) PutU64(v uint64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, v)
}

// PutI64 appends a big-endian int64.
func (e *Encoder) PutI64(v int64) { e.PutU64(uint64(v)) }

// PutInt appends an int as int64.
func (e *Encoder) PutInt(v int) { e.PutI64(int64(v)) }

// PutF64 appends an IEEE-754 float64.
func (e *Encoder) PutF64(v float64) { e.PutU64(math.Float64bits(v)) }

// PutString appends a length-prefixed UTF-8 string.
//
//lint:hotpath alloc=2
func (e *Encoder) PutString(v string) {
	e.PutU32(uint32(len(v)))
	e.buf = append(e.buf, v...)
}

// PutBytes appends a length-prefixed byte slice.
//
//lint:hotpath alloc=2
func (e *Encoder) PutBytes(v []byte) {
	e.PutU32(uint32(len(v)))
	e.buf = append(e.buf, v...)
}

// PutTime appends a time instant with nanosecond precision (UTC).
func (e *Encoder) PutTime(t time.Time) {
	e.PutI64(t.Unix())
	e.PutU32(uint32(t.Nanosecond()))
}

// PutDuration appends a duration.
func (e *Encoder) PutDuration(d time.Duration) { e.PutI64(int64(d)) }

// PutStrings appends a length-prefixed slice of strings.
//
//lint:hotpath alloc=2
func (e *Encoder) PutStrings(vs []string) {
	e.PutU32(uint32(len(vs)))
	for _, v := range vs {
		e.PutString(v)
	}
}

// Decoder reads values sequentially from a buffer.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a Decoder over buf. The Decoder does not copy buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err returns the first decoding error encountered, if any. All Get methods
// return zero values after an error, so a single Err check at the end of a
// decode sequence suffices.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.err = ErrTruncated
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads a byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a boolean.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// U32 reads a big-endian uint32.
//
//lint:hotpath alloc=0 locks=0 block=0
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// U64 reads a big-endian uint64.
//
//lint:hotpath alloc=0 locks=0 block=0
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// I64 reads a big-endian int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Int reads an int encoded as int64.
func (d *Decoder) Int() int { return int(d.I64()) }

// F64 reads an IEEE-754 float64.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// String reads a length-prefixed string.
//
//lint:hotpath alloc=1
func (d *Decoder) String() string {
	n := d.U32()
	if d.err != nil {
		return ""
	}
	if n > MaxStringLen {
		d.err = fmt.Errorf("orb: string length %d exceeds limit", n) //lint:alloc error slow path
		return ""
	}
	b := d.take(int(n))
	if b == nil {
		return ""
	}
	return string(b)
}

// Bytes reads a length-prefixed byte slice. The result is a copy.
//
//lint:hotpath alloc=1
func (d *Decoder) Bytes() []byte {
	n := d.U32()
	if d.err != nil {
		return nil
	}
	if n > MaxStringLen {
		d.err = fmt.Errorf("orb: bytes length %d exceeds limit", n) //lint:alloc error slow path
		return nil
	}
	b := d.take(int(n))
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// RawBytes reads a length-prefixed byte slice without copying. The result
// aliases the decoder's buffer: the caller must treat it as read-only and
// must not retain it past the buffer's lifetime — for a servant, past the
// Dispatch call (DESIGN.md §13). Use Bytes when the value is kept.
//
//lint:hotpath alloc=0 locks=0 block=0
func (d *Decoder) RawBytes() []byte {
	n := d.U32()
	if d.err != nil {
		return nil
	}
	if n > MaxStringLen {
		d.err = fmt.Errorf("orb: bytes length %d exceeds limit", n) //lint:alloc error slow path
		return nil
	}
	return d.take(int(n))
}

// RawString reads a length-prefixed string field as raw bytes, skipping the
// string-conversion copy. Same aliasing rules as RawBytes; compare with
// string(b) == "lit" (which the compiler keeps allocation-free) or
// bytes.Equal. Use String when the value is kept.
//
//lint:hotpath alloc=0 locks=0 block=0
func (d *Decoder) RawString() []byte {
	n := d.U32()
	if d.err != nil {
		return nil
	}
	if n > MaxStringLen {
		d.err = fmt.Errorf("orb: string length %d exceeds limit", n) //lint:alloc error slow path
		return nil
	}
	return d.take(int(n))
}

// Time reads a time instant in UTC.
func (d *Decoder) Time() time.Time {
	sec := d.I64()
	nsec := d.U32()
	if d.err != nil {
		return time.Time{}
	}
	return time.Unix(sec, int64(nsec)).UTC()
}

// Duration reads a duration.
func (d *Decoder) Duration() time.Duration { return time.Duration(d.I64()) }

// Strings reads a length-prefixed slice of strings.
//
//lint:hotpath alloc=3
func (d *Decoder) Strings() []string {
	n := d.U32()
	if d.err != nil {
		return nil
	}
	if n > MaxSliceLen {
		d.err = fmt.Errorf("orb: slice length %d exceeds limit", n) //lint:alloc error slow path
		return nil
	}
	out := make([]string, 0, n)
	for i := uint32(0); i < n; i++ {
		out = append(out, d.String())
		if d.err != nil {
			return nil
		}
	}
	return out
}
