// Package baseline implements the comparison schedulers the paper discusses
// qualitatively, so the comparisons in Section 2 become quantitative:
//
//   - CondorLike: a central matchmaker in the style of Condor [LLM88].
//     Machines are matched to queued jobs when fully idle; an owner's
//     return evicts grid work; sequential jobs may checkpoint (Condor
//     supported this via re-linking), but parallel jobs require dedicated
//     machines ("some computers in the system should be configured as
//     partially-reserved nodes") and lose all work on any failure.
//
//   - BOINCLike: a pull-based work-unit server in the style of
//     SETI@home/BOINC. Idle clients fetch independent work units; there is
//     no inter-node communication, so parallel (BSP) applications are
//     rejected; an interrupted work unit resumes later on the *same*
//     machine from a local checkpoint (no migration); partially idle
//     machines contribute nothing.
//
// Both operate directly on the node substrate with an explicit Tick driven
// by the experiment loop, so they are comparable with the full InteGrade
// stack on identical clusters.
package baseline

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"integrade/internal/node"
	"integrade/internal/resource"
)

// JobKind classifies baseline workload entries.
type JobKind int

// Job kinds.
const (
	// JobSequential is a single task.
	JobSequential JobKind = iota + 1
	// JobBag is a bag of independent tasks.
	JobBag
	// JobBSP is a communicating parallel job requiring gang placement.
	JobBSP
)

// String implements fmt.Stringer.
func (k JobKind) String() string {
	switch k {
	case JobSequential:
		return "sequential"
	case JobBag:
		return "bag"
	case JobBSP:
		return "bsp"
	default:
		return fmt.Sprintf("JobKind(%d)", int(k))
	}
}

// Job is one unit of submitted work.
type Job struct {
	ID          string
	Kind        JobKind
	Tasks       int
	WorkPerTask float64 // MI
	Alloc       resource.Vector
}

// Validate reports malformed jobs.
func (j Job) Validate() error {
	if j.ID == "" {
		return errors.New("baseline: job without ID")
	}
	if j.Tasks < 1 {
		return fmt.Errorf("baseline: job %s with %d tasks", j.ID, j.Tasks)
	}
	if j.Kind == JobSequential && j.Tasks != 1 {
		return fmt.Errorf("baseline: sequential job %s with %d tasks", j.ID, j.Tasks)
	}
	if j.WorkPerTask <= 0 {
		return fmt.Errorf("baseline: job %s with non-positive work", j.ID)
	}
	return nil
}

// Stats are the common scheduler counters.
type Stats struct {
	TasksCompleted int
	TasksEvicted   int
	BSPCompleted   int
	BSPRejected    int
	WorkLostMI     float64
}

// task is one schedulable unit inside a job.
type task struct {
	id       string
	job      *jobState
	work     float64
	progress float64 // preserved progress (checkpointing semantics differ)
	// boundNode pins a task to one machine (BOINC resume semantics).
	boundNode string
	running   bool
	nodeID    string
	done      bool
}

type jobState struct {
	job       Job
	tasks     []*task
	completed int
}

func (js *jobState) done() bool { return js.completed == len(js.tasks) }

// newJobState expands a job into tasks.
func newJobState(j Job) *jobState {
	js := &jobState{job: j}
	for i := 0; i < j.Tasks; i++ {
		js.tasks = append(js.tasks, &task{
			id:   fmt.Sprintf("%s/t%d", j.ID, i),
			job:  js,
			work: j.WorkPerTask,
		})
	}
	return js
}

// startTask commits the allocation and starts the task on n.
func startTask(n *node.Node, tk *task, now time.Time) error {
	res, err := n.Ledger().Reserve(tk.job.job.Alloc, tk.job.job.ID, now, now.Add(time.Minute))
	if err != nil {
		return err
	}
	if err := n.Ledger().Commit(res.ID, now); err != nil {
		return err
	}
	nt := node.Task{ID: tk.id, Work: tk.work, Alloc: tk.job.job.Alloc}
	nt.SetProgress(tk.progress)
	if err := n.StartTask(now, nt); err != nil {
		n.Ledger().Release(tk.job.job.Alloc)
		return err
	}
	tk.running = true
	tk.nodeID = n.ID()
	return nil
}

// fullyIdle reports the Condor/BOINC notion of an exploitable machine: up,
// owner absent, and no grid task already running.
func fullyIdle(n *node.Node, now time.Time) bool {
	if n.IsDown(now) {
		return false
	}
	if !n.Dedicated() && n.OwnerActivity(now).Busy() {
		return false
	}
	return len(n.RunningTasks()) == 0
}

// sortNodes orders nodes by descending CPU then ID for determinism.
func sortNodes(nodes []*node.Node) []*node.Node {
	out := append([]*node.Node(nil), nodes...)
	sort.Slice(out, func(i, j int) bool {
		ci, cj := out[i].Spec().Capacity.MIPS, out[j].Spec().Capacity.MIPS
		if ci != cj {
			return ci > cj
		}
		return out[i].ID() < out[j].ID()
	})
	return out
}
