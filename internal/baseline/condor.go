package baseline

import (
	"fmt"
	"time"

	"integrade/internal/node"
)

// CondorLike is the central-matchmaker baseline. See the package comment
// for the modelled semantics.
type CondorLike struct {
	nodes []*node.Node
	queue []*jobState
	// taskNode maps running task IDs back to tasks for event handling.
	running map[string]*task
	stats   Stats
	// checkpointEvery preserves sequential-job progress in multiples of
	// this work amount on eviction (Condor's re-linked checkpointing);
	// zero disables it. Parallel jobs never checkpoint.
	checkpointEvery float64
}

// CondorOption configures the baseline.
type CondorOption func(*CondorLike)

// WithCondorCheckpoint enables sequential-job checkpointing every workMI.
func WithCondorCheckpoint(workMI float64) CondorOption {
	return func(c *CondorLike) { c.checkpointEvery = workMI }
}

// NewCondorLike returns a matchmaker over the given machines.
func NewCondorLike(nodes []*node.Node, opts ...CondorOption) *CondorLike {
	c := &CondorLike{
		nodes:   sortNodes(nodes),
		running: make(map[string]*task),
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Name identifies the scheduler in experiment tables.
func (c *CondorLike) Name() string { return "condor-like" }

// Stats returns the counters.
func (c *CondorLike) Stats() Stats { return c.stats }

// Submit queues a job. BSP jobs are accepted but will only ever match
// dedicated machines.
func (c *CondorLike) Submit(j Job) error {
	if err := j.Validate(); err != nil {
		return err
	}
	c.queue = append(c.queue, newJobState(j))
	return nil
}

// Pending returns the number of unfinished tasks.
func (c *CondorLike) Pending() int {
	n := 0
	for _, js := range c.queue {
		for _, tk := range js.tasks {
			if !tk.done {
				n++
			}
		}
	}
	return n
}

// Tick advances all machines to now, handles completions/evictions, and
// runs one matchmaking cycle.
func (c *CondorLike) Tick(now time.Time) {
	// Harvest events.
	for _, n := range c.nodes {
		done, evicted := n.Sync(now)
		for _, t := range done {
			if tk, ok := c.running[t.ID]; ok {
				delete(c.running, t.ID)
				tk.running = false
				tk.done = true
				tk.job.completed++
				c.stats.TasksCompleted++
				if tk.job.job.Kind == JobBSP && tk.job.done() {
					c.stats.BSPCompleted++
				}
			}
		}
		for _, t := range evicted {
			c.handleEviction(t, now)
		}
	}
	c.match(now)
}

// handleEviction routes one evicted task through Condor's recovery
// semantics: sequential work resumes from the last checkpoint (zero without
// checkpointing), parallel work loses everything and aborts its gang.
func (c *CondorLike) handleEviction(t *node.Task, now time.Time) {
	tk, ok := c.running[t.ID]
	if !ok {
		return
	}
	delete(c.running, t.ID)
	tk.running = false
	c.stats.TasksEvicted++
	switch tk.job.job.Kind {
	case JobSequential, JobBag:
		if c.checkpointEvery > 0 {
			intervals := int(t.Progress() / c.checkpointEvery)
			tk.progress = float64(intervals) * c.checkpointEvery
		} else {
			tk.progress = 0
		}
		c.stats.WorkLostMI += t.Progress() - tk.progress
	case JobBSP:
		// A parallel job loses everything: evict its siblings too.
		c.stats.WorkLostMI += t.Progress()
		c.abortBSP(tk.job, now)
	}
}

// Crash fails a machine outright for the given outage and routes its dying
// tasks through the eviction path, exactly as the matchmaker would observe a
// vanished worker. Unknown machines are ignored.
func (c *CondorLike) Crash(nodeID string, now time.Time, outage time.Duration) {
	for _, n := range c.nodes {
		if n.ID() == nodeID {
			for _, t := range n.Fail(now, outage) {
				c.handleEviction(t, now)
			}
			return
		}
	}
}

// abortBSP cancels a BSP job's other running tasks and resets progress.
func (c *CondorLike) abortBSP(js *jobState, now time.Time) {
	for _, sib := range js.tasks {
		sib.progress = 0
		if !sib.running {
			continue
		}
		for _, n := range c.nodes {
			if n.ID() == sib.nodeID {
				if t := n.CancelTask(now, sib.id); t != nil {
					c.stats.WorkLostMI += t.Progress()
				}
				break
			}
		}
		delete(c.running, sib.id)
		sib.running = false
	}
}

// match assigns queued tasks to fully idle machines, whole-machine at a
// time (Condor claims the machine). BSP jobs match only dedicated machines,
// gang-style.
func (c *CondorLike) match(now time.Time) {
	claimed := make(map[string]bool)
	idle := func(n *node.Node) bool { return !claimed[n.ID()] && fullyIdle(n, now) }

	for _, js := range c.queue {
		switch js.job.Kind {
		case JobBSP:
			var pending []*task
			for _, tk := range js.tasks {
				if !tk.done && !tk.running {
					pending = append(pending, tk)
				}
			}
			if len(pending) == 0 {
				continue
			}
			// Gang over dedicated machines only.
			var hosts []*node.Node
			for _, n := range c.nodes {
				if len(hosts) == len(pending) {
					break
				}
				if n.Dedicated() && idle(n) && js.job.Alloc.Fits(n.GridCapacity(now)) {
					hosts = append(hosts, n)
				}
			}
			if len(hosts) < len(pending) {
				continue
			}
			for i, tk := range pending {
				if err := startTask(hosts[i], tk, now); err != nil {
					continue
				}
				claimed[hosts[i].ID()] = true
				c.running[tk.id] = tk
			}
		default:
			for _, tk := range js.tasks {
				if tk.done || tk.running {
					continue
				}
				for _, n := range c.nodes {
					if !idle(n) || !js.job.Alloc.Fits(n.GridCapacity(now)) {
						continue
					}
					if err := startTask(n, tk, now); err != nil {
						continue
					}
					claimed[n.ID()] = true
					c.running[tk.id] = tk
					break
				}
			}
		}
	}
}

// String implements fmt.Stringer for diagnostics.
func (c *CondorLike) String() string {
	return fmt.Sprintf("condor-like{machines=%d pending=%d}", len(c.nodes), c.Pending())
}
