package baseline

import (
	"testing"
	"time"

	"integrade/internal/ncc"
	"integrade/internal/node"
	"integrade/internal/resource"
	"integrade/internal/usage"
)

var (
	linux  = resource.Platform{Arch: "amd64", OS: "linux"}
	monday = time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC)
)

func mkNode(t *testing.T, id string, mips float64, dedicated bool, profile *usage.Profile) *node.Node {
	t.Helper()
	spec := resource.MachineSpec{
		Platform:  linux,
		Capacity:  resource.Vector{MIPS: mips, RAMMB: 1024, DiskMB: 1000, NetMbps: 100},
		LANID:     "lan0",
		Dedicated: dedicated,
	}
	var tr *usage.Trace
	if profile != nil {
		tr = usage.NewTrace(*profile, int64(len(id)*31))
	}
	pol := ncc.Policy{Mode: ncc.ModeIdleOnly, CPUFraction: 1, RAMFraction: 0.9, IdleAfter: 5 * time.Minute}
	if dedicated {
		pol = ncc.Generous()
	}
	n, err := node.New(id, spec, tr, pol, monday)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// drive ticks a scheduler every 5 minutes for the given span.
func drive(s interface{ Tick(time.Time) }, from time.Time, span time.Duration) time.Time {
	now := from
	for elapsed := time.Duration(0); elapsed < span; elapsed += 5 * time.Minute {
		now = from.Add(elapsed)
		s.Tick(now)
	}
	return now
}

func TestJobValidate(t *testing.T) {
	good := Job{ID: "j", Kind: JobSequential, Tasks: 1, WorkPerTask: 10}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Job{
		{Kind: JobSequential, Tasks: 1, WorkPerTask: 1},
		{ID: "j", Kind: JobSequential, Tasks: 2, WorkPerTask: 1},
		{ID: "j", Kind: JobBag, Tasks: 0, WorkPerTask: 1},
		{ID: "j", Kind: JobBag, Tasks: 2, WorkPerTask: 0},
	}
	for _, j := range bad {
		if err := j.Validate(); err == nil {
			t.Fatalf("invalid job accepted: %+v", j)
		}
	}
	for _, k := range []JobKind{JobSequential, JobBag, JobBSP, JobKind(9)} {
		if k.String() == "" {
			t.Fatal("empty JobKind string")
		}
	}
}

func TestCondorRunsSequentialJob(t *testing.T) {
	nodes := []*node.Node{
		mkNode(t, "d0", 1000, true, nil),
		mkNode(t, "d1", 1000, true, nil),
	}
	c := NewCondorLike(nodes)
	if err := c.Submit(Job{
		ID: "j1", Kind: JobSequential, Tasks: 1,
		WorkPerTask: 600_000, // 10 min at 1000 MIPS
		Alloc:       resource.Vector{MIPS: 1000, RAMMB: 64},
	}); err != nil {
		t.Fatal(err)
	}
	drive(c, monday, time.Hour)
	if c.Stats().TasksCompleted != 1 {
		t.Fatalf("completed = %d", c.Stats().TasksCompleted)
	}
	if c.Pending() != 0 {
		t.Fatalf("pending = %d", c.Pending())
	}
}

func TestCondorWholeMachineClaim(t *testing.T) {
	// One machine, two tasks: they must run serially (Condor claims the
	// whole machine), even though resources would allow both.
	nodes := []*node.Node{mkNode(t, "d0", 1000, true, nil)}
	c := NewCondorLike(nodes)
	if err := c.Submit(Job{
		ID: "bag", Kind: JobBag, Tasks: 2,
		WorkPerTask: 150_000, // 5 min at 500
		Alloc:       resource.Vector{MIPS: 500, RAMMB: 64},
	}); err != nil {
		t.Fatal(err)
	}
	c.Tick(monday)
	if got := len(nodes[0].RunningTasks()); got != 1 {
		t.Fatalf("running tasks = %d, want 1 (whole-machine claim)", got)
	}
	drive(c, monday, 2*time.Hour)
	if c.Stats().TasksCompleted != 2 {
		t.Fatalf("completed = %d", c.Stats().TasksCompleted)
	}
}

func TestCondorBSPRequiresDedicated(t *testing.T) {
	idleProfile := usage.MostlyIdle
	nodes := []*node.Node{
		mkNode(t, "w0", 1000, false, &idleProfile),
		mkNode(t, "w1", 1000, false, &idleProfile),
		mkNode(t, "d0", 1000, true, nil),
	}
	c := NewCondorLike(nodes)
	if err := c.Submit(Job{
		ID: "par", Kind: JobBSP, Tasks: 2,
		WorkPerTask: 60_000,
		Alloc:       resource.Vector{MIPS: 500, RAMMB: 64},
	}); err != nil {
		t.Fatal(err)
	}
	drive(c, monday, 2*time.Hour)
	// Only one dedicated machine: the 2-proc gang can never match, even
	// though two idle workstations sit there.
	if c.Stats().BSPCompleted != 0 {
		t.Fatal("BSP completed without enough dedicated machines")
	}
	if c.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", c.Pending())
	}
	// Add a second dedicated machine: now it can run.
	c2 := NewCondorLike(append(nodes, mkNode(t, "d1", 1000, true, nil)))
	if err := c2.Submit(Job{
		ID: "par2", Kind: JobBSP, Tasks: 2,
		WorkPerTask: 60_000,
		Alloc:       resource.Vector{MIPS: 500, RAMMB: 64},
	}); err != nil {
		t.Fatal(err)
	}
	// The shared node objects have already advanced to monday+2h; continue
	// forward from there.
	drive(c2, monday.Add(2*time.Hour), 2*time.Hour)
	if c2.Stats().BSPCompleted != 1 {
		t.Fatalf("BSPCompleted = %d", c2.Stats().BSPCompleted)
	}
}

func TestCondorEvictionRestartsFromCheckpoint(t *testing.T) {
	office := usage.OfficeWorker
	nodes := []*node.Node{mkNode(t, "w0", 1000, false, &office)}
	c := NewCondorLike(nodes, WithCondorCheckpoint(60_000))
	// Submit at midnight; owner arrives ~09:00; job needs 12h: must suffer
	// eviction.
	if err := c.Submit(Job{
		ID: "long", Kind: JobSequential, Tasks: 1,
		WorkPerTask: 12 * 3600 * 1000,
		Alloc:       resource.Vector{MIPS: 1000, RAMMB: 64},
	}); err != nil {
		t.Fatal(err)
	}
	drive(c, monday, 12*time.Hour)
	st := c.Stats()
	if st.TasksEvicted < 1 {
		t.Fatal("no eviction over a working day")
	}
	// Checkpointing bounds loss to one interval per eviction.
	if st.WorkLostMI > float64(st.TasksEvicted)*60_000 {
		t.Fatalf("WorkLostMI = %v with %d evictions", st.WorkLostMI, st.TasksEvicted)
	}
}

func TestBOINCRejectsBSP(t *testing.T) {
	b := NewBOINCLike([]*node.Node{mkNode(t, "d0", 1000, true, nil)})
	err := b.Submit(Job{
		ID: "par", Kind: JobBSP, Tasks: 2, WorkPerTask: 1,
		Alloc: resource.Vector{MIPS: 100, RAMMB: 16},
	})
	if err == nil {
		t.Fatal("BSP accepted by boinc-like")
	}
	if b.Stats().BSPRejected != 1 {
		t.Fatalf("BSPRejected = %d", b.Stats().BSPRejected)
	}
}

func TestBOINCPullAndComplete(t *testing.T) {
	nodes := []*node.Node{
		mkNode(t, "c0", 1000, true, nil),
		mkNode(t, "c1", 1000, true, nil),
	}
	b := NewBOINCLike(nodes)
	if err := b.Submit(Job{
		ID: "wu", Kind: JobBag, Tasks: 4,
		WorkPerTask: 300_000, // 5 min at 1000
		Alloc:       resource.Vector{MIPS: 1000, RAMMB: 64},
	}); err != nil {
		t.Fatal(err)
	}
	b.Tick(monday)
	// Both clients pulled one unit each.
	if len(nodes[0].RunningTasks())+len(nodes[1].RunningTasks()) != 2 {
		t.Fatal("clients did not pull work")
	}
	drive(b, monday, time.Hour)
	if b.Stats().TasksCompleted != 4 {
		t.Fatalf("completed = %d", b.Stats().TasksCompleted)
	}
}

func TestBOINCResumeOnSameMachine(t *testing.T) {
	office := usage.OfficeWorker
	w := mkNode(t, "w0", 1000, false, &office)
	d := mkNode(t, "d9", 1000, true, nil)
	b := NewBOINCLike([]*node.Node{w, d})
	// Two units: one will land on the workstation and be interrupted at
	// 09:00; it must resume on w0 (with progress), not migrate to d9.
	if err := b.Submit(Job{
		ID: "wu", Kind: JobBag, Tasks: 2,
		WorkPerTask: 20 * 3600 * 1000, // 20h at 1000 MIPS: spans the workday
		Alloc:       resource.Vector{MIPS: 1000, RAMMB: 64},
	}); err != nil {
		t.Fatal(err)
	}
	drive(b, monday, 12*time.Hour) // midnight → noon
	st := b.Stats()
	if st.TasksEvicted < 1 {
		t.Skip("no interruption this seed")
	}
	// The interrupted unit is bound to w0 and not running elsewhere.
	bound := 0
	for _, tks := range b.bound {
		bound += len(tks)
	}
	running := len(w.RunningTasks()) + len(d.RunningTasks())
	if bound+running+st.TasksCompleted < 2 {
		t.Fatalf("lost a work unit: bound=%d running=%d done=%d", bound, running, st.TasksCompleted)
	}
	if len(d.RunningTasks()) > 1 {
		t.Fatal("dedicated client running more than its own unit (migration happened)")
	}
	// No work is ever lost: local checkpoints preserve full progress.
	if st.WorkLostMI != 0 {
		t.Fatalf("WorkLostMI = %v, want 0 (local checkpointing)", st.WorkLostMI)
	}
}

func TestBOINCIgnoresPartiallyIdleNodes(t *testing.T) {
	// A shared-mode machine whose owner is always somewhat active: the
	// InteGrade feature BOINC lacks. fullyIdle must reject it.
	busy := usage.AlwaysBusy
	spec := resource.MachineSpec{
		Platform: linux,
		Capacity: resource.Vector{MIPS: 1000, RAMMB: 1024, DiskMB: 100, NetMbps: 10},
		LANID:    "lan0",
	}
	tr := usage.NewTrace(busy, 3)
	pol := ncc.Policy{Mode: ncc.ModeShared, CPUFraction: 0.5, RAMFraction: 0.5, IdleAfter: time.Minute}
	n, err := node.New("shared", spec, tr, pol, monday)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBOINCLike([]*node.Node{n})
	if err := b.Submit(Job{
		ID: "wu", Kind: JobSequential, Tasks: 1, WorkPerTask: 1000,
		Alloc: resource.Vector{MIPS: 100, RAMMB: 16},
	}); err != nil {
		t.Fatal(err)
	}
	drive(b, monday.Add(10*time.Hour), time.Hour)
	if b.Stats().TasksCompleted != 0 {
		t.Fatal("boinc-like used a partially idle machine")
	}
}

func TestSchedulerStringsAndSortNodes(t *testing.T) {
	nodes := []*node.Node{
		mkNode(t, "b", 500, true, nil),
		mkNode(t, "a", 500, true, nil),
		mkNode(t, "c", 2000, true, nil),
	}
	sorted := sortNodes(nodes)
	if sorted[0].ID() != "c" || sorted[1].ID() != "a" || sorted[2].ID() != "b" {
		t.Fatalf("sortNodes order: %s %s %s", sorted[0].ID(), sorted[1].ID(), sorted[2].ID())
	}
	// The input slice is not reordered.
	if nodes[0].ID() != "b" {
		t.Fatal("sortNodes mutated input")
	}
	c := NewCondorLike(nodes)
	if c.String() == "" {
		t.Fatal("empty CondorLike string")
	}
	b := NewBOINCLike(nodes)
	if b.String() == "" {
		t.Fatal("empty BOINCLike string")
	}
	if c.Name() == b.Name() {
		t.Fatal("scheduler names collide")
	}
}

func TestCondorRejectsInvalidJob(t *testing.T) {
	c := NewCondorLike([]*node.Node{mkNode(t, "d", 500, true, nil)})
	if err := c.Submit(Job{}); err == nil {
		t.Fatal("invalid job accepted")
	}
	b := NewBOINCLike([]*node.Node{mkNode(t, "e", 500, true, nil)})
	if err := b.Submit(Job{}); err == nil {
		t.Fatal("invalid job accepted by boinc-like")
	}
}
