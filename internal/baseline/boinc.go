package baseline

import (
	"fmt"
	"time"

	"integrade/internal/node"
)

// BOINCLike is the pull-based work-unit server baseline. See the package
// comment for the modelled semantics.
type BOINCLike struct {
	nodes   []*node.Node
	queue   []*task            // unassigned work units, FIFO
	bound   map[string][]*task // nodeID -> interrupted work units pinned there
	running map[string]*task
	jobs    []*jobState
	stats   Stats
}

// NewBOINCLike returns a work-unit server over the given client machines.
func NewBOINCLike(nodes []*node.Node) *BOINCLike {
	return &BOINCLike{
		nodes:   sortNodes(nodes),
		bound:   make(map[string][]*task),
		running: make(map[string]*task),
	}
}

// Name identifies the scheduler in experiment tables.
func (b *BOINCLike) Name() string { return "boinc-like" }

// Stats returns the counters.
func (b *BOINCLike) Stats() Stats { return b.stats }

// Submit queues a job's work units. BSP jobs are rejected: the platform has
// no inter-node communication ("lack of support for parallel applications
// that demand communication between computing nodes").
func (b *BOINCLike) Submit(j Job) error {
	if err := j.Validate(); err != nil {
		return err
	}
	if j.Kind == JobBSP {
		b.stats.BSPRejected++
		return fmt.Errorf("baseline: boinc-like rejects BSP job %s", j.ID)
	}
	js := newJobState(j)
	b.jobs = append(b.jobs, js)
	b.queue = append(b.queue, js.tasks...)
	return nil
}

// Pending returns unfinished work units (queued, bound or running).
func (b *BOINCLike) Pending() int {
	n := 0
	for _, js := range b.jobs {
		for _, tk := range js.tasks {
			if !tk.done {
				n++
			}
		}
	}
	return n
}

// Tick advances the clients to now; idle clients pull work. Interrupted
// units resume only on the machine that holds their local checkpoint.
func (b *BOINCLike) Tick(now time.Time) {
	for _, n := range b.nodes {
		done, evicted := n.Sync(now)
		for _, t := range done {
			if tk, ok := b.running[t.ID]; ok {
				delete(b.running, t.ID)
				tk.running = false
				tk.done = true
				tk.job.completed++
				b.stats.TasksCompleted++
			}
		}
		for _, t := range evicted {
			b.handleEviction(n.ID(), t)
		}
	}

	// Pull phase: every fully idle client asks for work.
	for _, n := range b.nodes {
		if !fullyIdle(n, now) {
			continue
		}
		tk := b.nextUnitFor(n)
		if tk == nil {
			continue
		}
		if !tk.job.job.Alloc.Fits(n.GridCapacity(now)) {
			// Client too small for this unit; push it back for others.
			b.queue = append([]*task{tk}, b.queue...)
			continue
		}
		if err := startTask(n, tk, now); err != nil {
			b.queue = append([]*task{tk}, b.queue...)
			continue
		}
		b.running[tk.id] = tk
	}
}

// handleEviction records an interrupted work unit. Local client checkpoint:
// progress survives in full, but the unit is pinned to this machine and only
// resumes there (no migration).
func (b *BOINCLike) handleEviction(nodeID string, t *node.Task) {
	tk, ok := b.running[t.ID]
	if !ok {
		return
	}
	delete(b.running, t.ID)
	tk.running = false
	b.stats.TasksEvicted++
	tk.progress = t.Progress()
	tk.boundNode = nodeID
	b.bound[nodeID] = append(b.bound[nodeID], tk)
}

// Crash fails a client machine for the given outage. Its work units stay
// pinned to it — the on-disk checkpoint survives a reboot — so they resume
// only once the machine comes back. Unknown machines are ignored.
func (b *BOINCLike) Crash(nodeID string, now time.Time, outage time.Duration) {
	for _, n := range b.nodes {
		if n.ID() == nodeID {
			for _, t := range n.Fail(now, outage) {
				b.handleEviction(nodeID, t)
			}
			return
		}
	}
}

// nextUnitFor returns the unit an idle client should run: first any unit
// pinned to it (resume from local checkpoint), then the global queue.
func (b *BOINCLike) nextUnitFor(n *node.Node) *task {
	if pinned := b.bound[n.ID()]; len(pinned) > 0 {
		tk := pinned[0]
		b.bound[n.ID()] = pinned[1:]
		return tk
	}
	for len(b.queue) > 0 {
		tk := b.queue[0]
		b.queue = b.queue[1:]
		if tk.done || tk.running || tk.boundNode != "" {
			continue // stale entry
		}
		return tk
	}
	return nil
}

// String implements fmt.Stringer for diagnostics.
func (b *BOINCLike) String() string {
	return fmt.Sprintf("boinc-like{clients=%d pending=%d}", len(b.nodes), b.Pending())
}
