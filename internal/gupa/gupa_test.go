package gupa

import (
	"testing"
	"time"

	"integrade/internal/lupa"
	"integrade/internal/orb"
	"integrade/internal/usage"
)

var monday = time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC)

// trainedPattern builds a pattern from an office-worker trace.
func trainedPattern(t *testing.T, seed int64) lupa.Pattern {
	t.Helper()
	a := lupa.NewAnalyzer(seed)
	tr := usage.NewTrace(usage.OfficeWorker, seed)
	for d := 0; d < 14; d++ {
		day := monday.AddDate(0, 0, d)
		for s := 0; s < usage.SlotsPerDay; s++ {
			at := day.Add(time.Duration(s) * usage.Interval)
			a.Record(at, tr.At(at))
		}
	}
	a.Record(monday.AddDate(0, 0, 14), usage.Activity{})
	if err := a.Retrain(); err != nil {
		t.Fatal(err)
	}
	return a.Pattern()
}

func TestUploadAndPredict(t *testing.T) {
	s := NewService()
	p := trainedPattern(t, 3)
	s.Upload("node-1", p)
	if s.Uploads() != 1 {
		t.Fatalf("Uploads = %d", s.Uploads())
	}
	if got := s.Nodes(); len(got) != 1 || got[0] != "node-1" {
		t.Fatalf("Nodes = %v", got)
	}

	// Friday evening: long idle prediction expected.
	friday19 := monday.AddDate(0, 0, 4).Add(19 * time.Hour)
	span, ok := s.PredictIdle("node-1", friday19)
	if !ok {
		t.Fatal("no prediction for uploaded pattern")
	}
	if span < 4*time.Hour {
		t.Fatalf("Friday 19:00 prediction = %v", span)
	}
	// Unknown node: no prediction.
	if _, ok := s.PredictIdle("ghost", friday19); ok {
		t.Fatal("prediction for unknown node")
	}
	// Untrained pattern: no prediction.
	s.Upload("node-2", lupa.Pattern{})
	if _, ok := s.PredictIdle("node-2", friday19); ok {
		t.Fatal("prediction from untrained pattern")
	}
}

func TestUploadReplaces(t *testing.T) {
	s := NewService()
	s.Upload("n", trainedPattern(t, 3))
	p2 := trainedPattern(t, 4)
	s.Upload("n", p2)
	got, ok := s.Pattern("n")
	if !ok {
		t.Fatal("pattern missing")
	}
	if got.Days != p2.Days {
		t.Fatalf("Days = %d, want %d", got.Days, p2.Days)
	}
	if s.Uploads() != 2 {
		t.Fatalf("Uploads = %d", s.Uploads())
	}
}

func TestPatternWireRoundTrip(t *testing.T) {
	p := trainedPattern(t, 3)
	var e orb.Encoder
	EncodePattern(&e, p)
	got, err := DecodePattern(orb.NewDecoder(e.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Days != p.Days || len(got.Centroids) != len(p.Centroids) {
		t.Fatalf("round trip mismatch: %d/%d centroids", len(got.Centroids), len(p.Centroids))
	}
	for i := range p.Centroids {
		for j := range p.Centroids[i] {
			if got.Centroids[i][j] != p.Centroids[i][j] {
				t.Fatal("centroid value mismatch")
			}
		}
	}
	for w := range p.WeekdayCounts {
		if len(got.WeekdayCounts[w]) != len(p.WeekdayCounts[w]) {
			t.Fatal("weekday counts length mismatch")
		}
		for c := range p.WeekdayCounts[w] {
			if got.WeekdayCounts[w][c] != p.WeekdayCounts[w][c] {
				t.Fatal("weekday count mismatch")
			}
		}
	}
}

func TestServantClientOverLoopback(t *testing.T) {
	o := orb.New()
	svc := NewService()
	adapter := orb.NewAdapter()
	if err := adapter.Register(ObjectKey, Servant(svc)); err != nil {
		t.Fatal(err)
	}
	ep, err := o.BindLoopback("manager", adapter)
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient(o, orb.ObjectRef{Endpoint: ep, Key: ObjectKey})

	p := trainedPattern(t, 3)
	if err := client.Upload("node-9", p); err != nil {
		t.Fatal(err)
	}
	nodes, err := client.Nodes()
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 1 || nodes[0] != "node-9" {
		t.Fatalf("Nodes = %v", nodes)
	}
	friday19 := monday.AddDate(0, 0, 4).Add(19 * time.Hour)
	span, ok, err := client.PredictIdle("node-9", friday19)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || span <= 0 {
		t.Fatalf("PredictIdle = %v, %v", span, ok)
	}
	_, ok, err = client.PredictIdle("ghost", friday19)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("prediction for unknown node over wire")
	}
}

func TestPredictMatchesLocalSemantics(t *testing.T) {
	// GUPA prediction must equal the pattern's weekday-prior prediction.
	s := NewService()
	p := trainedPattern(t, 3)
	s.Upload("n", p)
	at := monday.AddDate(0, 0, 8).Add(22 * time.Hour) // Tuesday 22:00
	span, ok := s.PredictIdle("n", at)
	if !ok {
		t.Fatal("no prediction")
	}
	slot := 22 * 12
	cat := p.LikelyCategory(time.Tuesday)
	want := p.IdleSpanFrom(cat, slot)
	if want == time.Duration(usage.SlotsPerDay-slot)*usage.Interval {
		next := p.LikelyCategory(time.Wednesday)
		want += p.IdleSpanFrom(next, 0)
	}
	if span != want {
		t.Fatalf("PredictIdle = %v, want %v", span, want)
	}
}
