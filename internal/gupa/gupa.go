// Package gupa implements the Global Usage Pattern Analyzer: the
// cluster-manager-side aggregation point for per-node usage patterns.
//
// Per the paper: "Each node's usage pattern is periodically uploaded to the
// GUPA. This information is made available to the GRM, which can make better
// scheduling decisions due to the possibility of predicting a node's idle
// periods based on its usage patterns."
package gupa

import (
	"sort"
	"sync"
	"time"

	"integrade/internal/lupa"
	"integrade/internal/orb"
)

// ObjectKey is the adapter key under which the GUPA servant registers.
const ObjectKey = "gupa"

// Service stores the latest uploaded pattern per node. Safe for concurrent
// use.
type Service struct {
	// mu guards patterns and uploads.
	mu       sync.RWMutex
	patterns map[string]lupa.Pattern
	uploads  int
}

// NewService returns an empty GUPA.
func NewService() *Service {
	return &Service{patterns: make(map[string]lupa.Pattern)}
}

// Upload stores (replaces) the pattern for a node.
func (s *Service) Upload(nodeID string, p lupa.Pattern) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.patterns[nodeID] = p
	s.uploads++
}

// Pattern returns the stored pattern for a node.
func (s *Service) Pattern(nodeID string) (lupa.Pattern, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.patterns[nodeID]
	return p, ok
}

// Nodes returns the IDs with stored patterns, sorted.
func (s *Service) Nodes() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := make([]string, 0, len(s.patterns))
	for id := range s.patterns {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Uploads returns the total number of pattern uploads received.
func (s *Service) Uploads() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.uploads
}

// PredictIdle estimates the remaining idle span of a node at t from its
// uploaded pattern, using the weekday's likely category (the GUPA lacks the
// node's intra-day observations — those sharpen the node-local LUPA
// prediction, which LRM status updates carry). ok is false when the node has
// no trained pattern.
func (s *Service) PredictIdle(nodeID string, t time.Time) (time.Duration, bool) {
	p, found := s.Pattern(nodeID)
	if !found || !p.Trained() {
		return 0, false
	}
	t = t.UTC()
	midnight := time.Date(t.Year(), t.Month(), t.Day(), 0, 0, 0, 0, time.UTC)
	slot := int(t.Sub(midnight) / (24 * time.Hour / time.Duration(len(p.Centroids[0]))))
	cat := p.LikelyCategory(t.Weekday())
	span := p.IdleSpanFrom(cat, slot)
	slots := len(p.Centroids[0])
	if slot >= 0 && slot < slots {
		full := time.Duration(slots-slot) * (24 * time.Hour / time.Duration(slots))
		if span == full {
			next := p.LikelyCategory(t.AddDate(0, 0, 1).Weekday())
			span += p.IdleSpanFrom(next, 0)
		}
	}
	return span, true
}

// Forecast converts a node's uploaded pattern into availability windows
// covering [from, from+horizon) — the cluster-side view of the same forecast
// the node's LRM computes locally, minus the intra-day live match (the GUPA
// only holds the trained pattern). Nil when the node has no trained pattern.
func (s *Service) Forecast(nodeID string, from time.Time, horizon time.Duration) []lupa.Window {
	p, found := s.Pattern(nodeID)
	if !found {
		return nil
	}
	return p.Forecast(from, horizon)
}

// Wire operation names.
const (
	opUpload  = "upload"
	opPredict = "predictIdle"
	opNodes   = "nodes"
)

// EncodePattern writes a pattern.
func EncodePattern(e *orb.Encoder, p lupa.Pattern) {
	e.PutInt(p.Days)
	e.PutU32(uint32(len(p.Centroids)))
	for _, c := range p.Centroids {
		e.PutU32(uint32(len(c)))
		for _, v := range c {
			e.PutF64(v)
		}
	}
	for w := range p.WeekdayCounts {
		e.PutU32(uint32(len(p.WeekdayCounts[w])))
		for _, n := range p.WeekdayCounts[w] {
			e.PutInt(n)
		}
	}
}

// DecodePattern reads a pattern written by EncodePattern.
func DecodePattern(d *orb.Decoder) (lupa.Pattern, error) {
	var p lupa.Pattern
	p.Days = d.Int()
	nc := d.U32()
	if err := d.Err(); err != nil {
		return lupa.Pattern{}, err
	}
	if nc > orb.MaxSliceLen {
		return lupa.Pattern{}, orb.Errorf(orb.CodeMarshal, "pattern with %d centroids", nc)
	}
	p.Centroids = make([][]float64, nc)
	for i := range p.Centroids {
		n := d.U32()
		if err := d.Err(); err != nil {
			return lupa.Pattern{}, err
		}
		if n > orb.MaxSliceLen {
			return lupa.Pattern{}, orb.Errorf(orb.CodeMarshal, "centroid with %d slots", n)
		}
		c := make([]float64, n)
		for j := range c {
			c[j] = d.F64()
		}
		p.Centroids[i] = c
	}
	for w := range p.WeekdayCounts {
		n := d.U32()
		if err := d.Err(); err != nil {
			return lupa.Pattern{}, err
		}
		if n > orb.MaxSliceLen {
			return lupa.Pattern{}, orb.Errorf(orb.CodeMarshal, "weekday counts %d", n)
		}
		counts := make([]int, n)
		for j := range counts {
			counts[j] = d.Int()
		}
		p.WeekdayCounts[w] = counts
	}
	return p, d.Err()
}

// Servant exposes the GUPA as an ORB servant.
func Servant(s *Service) orb.Servant {
	return orb.NewOpMux().
		Handle(opUpload, func(_ string, req *orb.Decoder) (*orb.Encoder, error) {
			nodeID := req.String()
			p, err := DecodePattern(req)
			if err != nil {
				return nil, orb.Errorf(orb.CodeMarshal, "upload: %v", err)
			}
			s.Upload(nodeID, p)
			return &orb.Encoder{}, nil
		}).
		Handle(opPredict, func(_ string, req *orb.Decoder) (*orb.Encoder, error) {
			nodeID := req.String()
			at := req.Time()
			if err := req.Err(); err != nil {
				return nil, orb.Errorf(orb.CodeMarshal, "predictIdle: %v", err)
			}
			span, ok := s.PredictIdle(nodeID, at)
			var e orb.Encoder
			e.PutBool(ok)
			e.PutDuration(span)
			return &e, nil
		}).
		Handle(opNodes, func(string, *orb.Decoder) (*orb.Encoder, error) {
			var e orb.Encoder
			e.PutStrings(s.Nodes())
			return &e, nil
		})
}

// Client is a typed stub for a remote GUPA.
type Client struct {
	inv orb.Invoker
	ref orb.ObjectRef
}

// NewClient returns a stub invoking the GUPA at ref via inv.
func NewClient(inv orb.Invoker, ref orb.ObjectRef) *Client {
	return &Client{inv: inv, ref: ref}
}

// Upload sends a node's pattern.
func (c *Client) Upload(nodeID string, p lupa.Pattern) error {
	var e orb.Encoder
	e.PutString(nodeID)
	EncodePattern(&e, p)
	_, err := c.inv.Invoke(c.ref, opUpload, e.Bytes())
	return err
}

// PredictIdle queries the remote idle prediction.
func (c *Client) PredictIdle(nodeID string, at time.Time) (time.Duration, bool, error) {
	var e orb.Encoder
	e.PutString(nodeID)
	e.PutTime(at)
	reply, err := c.inv.Invoke(c.ref, opPredict, e.Bytes())
	if err != nil {
		return 0, false, err
	}
	d := orb.NewDecoder(reply)
	ok := d.Bool()
	span := d.Duration()
	if err := d.Err(); err != nil {
		return 0, false, orb.Errorf(orb.CodeMarshal, "predictIdle reply: %v", err)
	}
	return span, ok, nil
}

// Nodes lists nodes with patterns.
func (c *Client) Nodes() ([]string, error) {
	reply, err := c.inv.Invoke(c.ref, opNodes, nil)
	if err != nil {
		return nil, err
	}
	d := orb.NewDecoder(reply)
	names := d.Strings()
	if err := d.Err(); err != nil {
		return nil, orb.Errorf(orb.CodeMarshal, "nodes reply: %v", err)
	}
	return names, nil
}
