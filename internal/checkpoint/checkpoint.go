// Package checkpoint implements machine- and operating-system-independent
// checkpointing for InteGrade applications — the paper's mechanism for
// ensuring "that application execution evolves even in a dynamic environment
// in which nodes can turn from idle to busy without further notice" and for
// "migration of computation across grid nodes".
//
// Snapshots are explicitly serialized (big-endian, length-prefixed — the
// ORB wire encoding), never raw memory images, so a snapshot taken on one
// architecture restores on any other. The Store keeps the latest snapshot
// per application; Resume re-runs a BSP program from it.
package checkpoint

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"integrade/internal/bsp"
	"integrade/internal/orb"
)

// ErrNoSnapshot indicates no checkpoint exists for an application.
var ErrNoSnapshot = errors.New("checkpoint: no snapshot")

// Storage is what Resume needs from a snapshot store. Both the in-memory
// Store and the durable FileStore satisfy it, so a BSP run can resume from
// either — including under a different GRM than the one it started under.
type Storage interface {
	Save(appID string, superstep int, states [][]byte) error
	Latest(appID string) (Snapshot, error)
	Drop(appID string)
	Sink(appID string) bsp.CheckpointSink
}

// Snapshot is one application-wide checkpoint: the portable state of every
// process at a superstep barrier.
type Snapshot struct {
	AppID     string
	Superstep int
	States    [][]byte
	TakenAt   time.Time
}

// Bytes returns the total payload size.
func (s Snapshot) Bytes() int {
	n := 0
	for _, st := range s.States {
		n += len(st)
	}
	return n
}

// Encode writes the snapshot in the portable wire format.
func (s Snapshot) Encode(e *orb.Encoder) {
	e.PutString(s.AppID)
	e.PutInt(s.Superstep)
	e.PutTime(s.TakenAt)
	e.PutU32(uint32(len(s.States)))
	for _, st := range s.States {
		e.PutBytes(st)
	}
}

// DecodeSnapshot reads a snapshot written by Encode.
func DecodeSnapshot(d *orb.Decoder) (Snapshot, error) {
	s := Snapshot{
		AppID:     d.String(),
		Superstep: d.Int(),
		TakenAt:   d.Time(),
	}
	n := d.U32()
	if err := d.Err(); err != nil {
		return Snapshot{}, err
	}
	if n > orb.MaxSliceLen {
		return Snapshot{}, fmt.Errorf("checkpoint: snapshot with %d states", n)
	}
	s.States = make([][]byte, n)
	for i := range s.States {
		s.States[i] = d.Bytes()
	}
	return s, d.Err()
}

// Store holds the latest snapshot per application. It is safe for
// concurrent use.
type Store struct {
	now func() time.Time

	// mu guards snaps and saves.
	//
	//lint:guards snaps,saves
	mu    sync.Mutex
	snaps map[string]Snapshot
	saves int
}

// NewStore returns a Store stamping snapshots with now (pass the clock's
// Now).
func NewStore(now func() time.Time) *Store {
	if now == nil {
		now = func() time.Time { return time.Time{} }
	}
	return &Store{now: now, snaps: make(map[string]Snapshot)}
}

// Save stores (replaces) the snapshot for an application.
func (st *Store) Save(appID string, superstep int, states [][]byte) error {
	if appID == "" {
		return errors.New("checkpoint: empty app ID")
	}
	cp := Snapshot{
		AppID:     appID,
		Superstep: superstep,
		States:    make([][]byte, len(states)),
		TakenAt:   st.now(),
	}
	for i, s := range states {
		cp.States[i] = append([]byte(nil), s...)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.snaps[appID] = cp
	st.saves++
	return nil
}

// Latest returns the newest snapshot for an application.
func (st *Store) Latest(appID string) (Snapshot, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	cp, ok := st.snaps[appID]
	if !ok {
		return Snapshot{}, fmt.Errorf("%w for %q", ErrNoSnapshot, appID)
	}
	return cp, nil
}

// Drop removes an application's snapshot (after successful completion).
func (st *Store) Drop(appID string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	delete(st.snaps, appID)
}

// Apps lists applications with snapshots, sorted.
func (st *Store) Apps() []string {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]string, 0, len(st.snaps))
	for id := range st.snaps {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Saves returns the total number of snapshots taken.
func (st *Store) Saves() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.saves
}

// Sink adapts the store to bsp.CheckpointSink for one application.
func (st *Store) Sink(appID string) bsp.CheckpointSink {
	return sinkFunc(func(superstep int, states [][]byte) error {
		return st.Save(appID, superstep, states)
	})
}

type sinkFunc func(int, [][]byte) error

func (f sinkFunc) Save(superstep int, states [][]byte) error {
	return f(superstep, states)
}

// Resume runs a BSP program with checkpointing every `every` supersteps
// into store, restoring from the application's latest snapshot when one
// exists (rollback recovery / migration restart). On success the snapshot
// is dropped.
func Resume(store Storage, appID string, nprocs, every int, program bsp.Program) error {
	return ResumeRuntime(store, appID, nprocs, every, program, nil)
}

// ResumeRuntime is Resume with a hook: onRuntime (if non-nil) receives the
// configured runtime before it starts, so callers can arm external controls
// — notably Runtime.Abort from a failure detector — against the active run.
// The hook is called again with nil once the run ends.
func ResumeRuntime(store Storage, appID string, nprocs, every int, program bsp.Program, onRuntime func(*bsp.Runtime)) error {
	opts := []bsp.Option{bsp.WithCheckpoint(every, store.Sink(appID))}
	if cp, err := store.Latest(appID); err == nil {
		if len(cp.States) != nprocs {
			return fmt.Errorf("checkpoint: snapshot for %d procs, runtime has %d", len(cp.States), nprocs)
		}
		opts = append(opts, bsp.WithRestore(cp.Superstep, cp.States))
	}
	rt, err := bsp.NewRuntime(nprocs, opts...)
	if err != nil {
		return err
	}
	if onRuntime != nil {
		onRuntime(rt)
		defer onRuntime(nil)
	}
	if err := rt.Run(program); err != nil {
		return err
	}
	store.Drop(appID)
	return nil
}
