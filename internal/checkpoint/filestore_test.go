package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"integrade/internal/bsp"
	"integrade/internal/orb"
)

func TestFileStoreSaveLatestDrop(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(500, 0).UTC()
	fs, err := NewFileStore(dir, func() time.Time { return now })
	if err != nil {
		t.Fatal(err)
	}
	if fs.Dir() != dir {
		t.Fatalf("Dir = %q", fs.Dir())
	}
	if err := fs.Save("", 1, nil); err == nil {
		t.Fatal("empty app ID accepted")
	}
	if err := fs.Save("app-1", 3, [][]byte{u64(7), u64(9)}); err != nil {
		t.Fatal(err)
	}
	cp, err := fs.Latest("app-1")
	if err != nil {
		t.Fatal(err)
	}
	if cp.Superstep != 3 || len(cp.States) != 2 || fromU64(cp.States[1]) != 9 {
		t.Fatalf("snapshot = %+v", cp)
	}
	if !cp.TakenAt.Equal(now) {
		t.Fatalf("TakenAt = %v", cp.TakenAt)
	}
	// Replace.
	if err := fs.Save("app-1", 5, [][]byte{u64(1), u64(2)}); err != nil {
		t.Fatal(err)
	}
	cp, _ = fs.Latest("app-1")
	if cp.Superstep != 5 {
		t.Fatalf("superstep = %d", cp.Superstep)
	}
	if got := fs.Apps(); len(got) != 1 || got[0] != "app-1" {
		t.Fatalf("Apps = %v", got)
	}
	fs.Drop("app-1")
	if _, err := fs.Latest("app-1"); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("err after Drop = %v", err)
	}
	if len(fs.Apps()) != 0 {
		t.Fatal("Apps after Drop not empty")
	}
}

func TestFileStoreSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	fs1, err := NewFileStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs1.Save("job", 4, [][]byte{u64(42)}); err != nil {
		t.Fatal(err)
	}
	// A "new process" opens the same directory.
	fs2, err := NewFileStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := fs2.Latest("job")
	if err != nil {
		t.Fatal(err)
	}
	if cp.Superstep != 4 || fromU64(cp.States[0]) != 42 {
		t.Fatalf("snapshot after restart = %+v", cp)
	}
}

func TestFileStoreSanitizesIDs(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	weird := "cluster/app:1 *"
	if err := fs.Save(weird, 1, [][]byte{u64(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Latest(weird); err != nil {
		t.Fatal(err)
	}
	// The file must live directly in dir (no path traversal).
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].IsDir() {
		t.Fatalf("entries = %v", entries)
	}
	if filepath.Dir(filepath.Join(dir, entries[0].Name())) != dir {
		t.Fatal("file escaped the store directory")
	}
}

func TestFileStoreCorruptFile(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bad.ckpt"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Latest("bad"); err == nil {
		t.Fatal("corrupt snapshot decoded")
	}
}

// flipByte flips one bit in the middle of a file's payload region.
func flipByte(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) <= fileHeaderLen {
		t.Fatalf("file too short to corrupt: %d bytes", len(data))
	}
	data[fileHeaderLen+len(data[fileHeaderLen:])/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestFileStoreBitFlipFallsBackToPreviousEpoch is the integrity story end to
// end: a bit-flipped current epoch fails its CRC and Latest silently serves
// the previous epoch instead of failing the resume.
func TestFileStoreBitFlipFallsBackToPreviousEpoch(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Save("job", 2, [][]byte{u64(11), u64(12)}); err != nil {
		t.Fatal(err)
	}
	if err := fs.Save("job", 4, [][]byte{u64(21), u64(22)}); err != nil {
		t.Fatal(err)
	}
	// Sanity: the current epoch wins while intact.
	cp, err := fs.Latest("job")
	if err != nil || cp.Superstep != 4 {
		t.Fatalf("Latest before corruption = %+v, %v", cp, err)
	}
	flipByte(t, fs.path("job"))
	cp, err = fs.Latest("job")
	if err != nil {
		t.Fatalf("Latest after bit flip: %v", err)
	}
	if cp.Superstep != 2 || fromU64(cp.States[0]) != 11 || fromU64(cp.States[1]) != 12 {
		t.Fatalf("fallback snapshot = %+v, want the superstep-2 epoch", cp)
	}
	// Both epochs corrupt: the failure surfaces as ErrCorrupt.
	flipByte(t, fs.path("job")+prevSuffix)
	if _, err := fs.Latest("job"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err with both epochs corrupt = %v", err)
	}
	// Drop clears both epochs.
	fs.Drop("job")
	if _, err := os.Stat(fs.path("job") + prevSuffix); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("previous epoch survived Drop: %v", err)
	}
}

// TestFileStoreCorruptWithoutFallbackFails: a single corrupt epoch with no
// previous file to fall back to is an error, not a silent empty resume.
func TestFileStoreCorruptWithoutFallbackFails(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Save("solo", 1, [][]byte{u64(7)}); err != nil {
		t.Fatal(err)
	}
	flipByte(t, fs.path("solo"))
	if _, err := fs.Latest("solo"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

// TestFileStoreReadsLegacyHeaderlessFiles: snapshot files written before the
// integrity header (raw wire encoding, no magic) still load.
func TestFileStoreReadsLegacyHeaderlessFiles(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	cp := Snapshot{AppID: "legacy", Superstep: 3, States: [][]byte{u64(5)}, TakenAt: time.Unix(9, 0).UTC()}
	var e orb.Encoder
	cp.Encode(&e)
	if err := os.WriteFile(fs.path("legacy"), e.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Latest("legacy")
	if err != nil {
		t.Fatal(err)
	}
	if got.Superstep != 3 || fromU64(got.States[0]) != 5 {
		t.Fatalf("legacy snapshot = %+v", got)
	}
}

func TestFileStoreAsBSPSink(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := bsp.NewRuntime(2, bsp.WithCheckpoint(1, fs.Sink("bspjob")))
	if err != nil {
		t.Fatal(err)
	}
	err = r.Run(func(p *bsp.Proc) error {
		p.SetState(func() []byte { return u64(uint64(p.PID() + 100)) })
		return p.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := fs.Latest("bspjob")
	if err != nil {
		t.Fatal(err)
	}
	if cp.Superstep != 1 || len(cp.States) != 2 || fromU64(cp.States[1]) != 101 {
		t.Fatalf("snapshot = %+v", cp)
	}
}

func TestNewFileStoreBadDir(t *testing.T) {
	// A path whose parent is a file must fail.
	dir := t.TempDir()
	blocker := filepath.Join(dir, "file")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFileStore(filepath.Join(blocker, "sub"), nil); err == nil {
		t.Fatal("store created under a file")
	}
}
