package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"integrade/internal/bsp"
	"integrade/internal/orb"
)

func u64(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

func fromU64(b []byte) uint64 { return binary.BigEndian.Uint64(b) }

func TestStoreSaveLatestDrop(t *testing.T) {
	now := time.Unix(100, 0)
	st := NewStore(func() time.Time { return now })
	if err := st.Save("", 1, nil); err == nil {
		t.Fatal("empty app ID accepted")
	}
	if err := st.Save("app", 2, [][]byte{u64(7), u64(8)}); err != nil {
		t.Fatal(err)
	}
	cp, err := st.Latest("app")
	if err != nil {
		t.Fatal(err)
	}
	if cp.Superstep != 2 || len(cp.States) != 2 || !cp.TakenAt.Equal(now) {
		t.Fatalf("snapshot = %+v", cp)
	}
	if cp.Bytes() != 16 {
		t.Fatalf("Bytes = %d", cp.Bytes())
	}
	// Later save replaces.
	if err := st.Save("app", 4, [][]byte{u64(9), u64(10)}); err != nil {
		t.Fatal(err)
	}
	cp, _ = st.Latest("app")
	if cp.Superstep != 4 {
		t.Fatalf("superstep = %d", cp.Superstep)
	}
	if st.Saves() != 2 {
		t.Fatalf("Saves = %d", st.Saves())
	}
	if got := st.Apps(); len(got) != 1 || got[0] != "app" {
		t.Fatalf("Apps = %v", got)
	}
	st.Drop("app")
	if _, err := st.Latest("app"); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("err = %v", err)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	st := NewStore(nil)
	state := u64(1)
	if err := st.Save("app", 1, [][]byte{state}); err != nil {
		t.Fatal(err)
	}
	state[0] = 0xFF // mutate caller's buffer
	cp, _ := st.Latest("app")
	if fromU64(cp.States[0]) != 1 {
		t.Fatal("store aliased caller's state buffer")
	}
}

func TestSnapshotWireRoundTrip(t *testing.T) {
	s := Snapshot{
		AppID:     "render-7",
		Superstep: 42,
		States:    [][]byte{u64(1), nil, u64(3)},
		TakenAt:   time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC),
	}
	var e orb.Encoder
	s.Encode(&e)
	got, err := DecodeSnapshot(orb.NewDecoder(e.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.AppID != s.AppID || got.Superstep != s.Superstep || !got.TakenAt.Equal(s.TakenAt) {
		t.Fatalf("round trip = %+v", got)
	}
	if len(got.States) != 3 || fromU64(got.States[0]) != 1 || fromU64(got.States[2]) != 3 {
		t.Fatalf("states = %v", got.States)
	}
}

// Property: snapshots with arbitrary state blobs round-trip the wire.
func TestSnapshotWireProperty(t *testing.T) {
	f := func(appID string, superstep uint16, blobs [][]byte) bool {
		s := Snapshot{AppID: appID, Superstep: int(superstep), States: blobs}
		var e orb.Encoder
		s.Encode(&e)
		got, err := DecodeSnapshot(orb.NewDecoder(e.Bytes()))
		if err != nil || got.AppID != appID || got.Superstep != int(superstep) {
			return false
		}
		if len(got.States) != len(blobs) {
			return false
		}
		for i := range blobs {
			if len(got.States[i]) != len(blobs[i]) {
				return false
			}
			for j := range blobs[i] {
				if got.States[i][j] != blobs[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// crashyProgram counts supersteps; it fails at failAt on process 0 on the
// first run (simulating an eviction mid-computation).
func crashyProgram(totalSteps int, failAt int, failed *atomic.Bool, finalSums *[8]uint64) bsp.Program {
	return func(p *bsp.Proc) error {
		var sum uint64
		if st := p.Restored(); st != nil {
			sum = fromU64(st)
		}
		p.SetState(func() []byte { return u64(sum) })
		for p.Superstep() < totalSteps {
			if p.PID() == 0 && p.Superstep() == failAt && !failed.Load() {
				failed.Store(true)
				return fmt.Errorf("injected node failure at superstep %d", failAt)
			}
			sum += uint64(p.Superstep() + 1)
			if err := p.Sync(); err != nil {
				return err
			}
		}
		finalSums[p.PID()] = sum
		return nil
	}
}

func TestResumeRecoversFromFailure(t *testing.T) {
	const nprocs = 4
	const steps = 10
	st := NewStore(time.Now)
	var failed atomic.Bool
	var sums [8]uint64
	program := crashyProgram(steps, 7, &failed, &sums)

	// First run fails at superstep 7 with checkpoints every 3 supersteps
	// (so the latest checkpoint is at superstep 6).
	err := Resume(st, "job", nprocs, 3, program)
	if err == nil {
		t.Fatal("first run succeeded despite injected failure")
	}
	cp, err := st.Latest("job")
	if err != nil {
		t.Fatal(err)
	}
	if cp.Superstep != 6 {
		t.Fatalf("checkpoint superstep = %d, want 6", cp.Superstep)
	}

	// Second run restores from superstep 6 and completes.
	if err := Resume(st, "job", nprocs, 3, program); err != nil {
		t.Fatal(err)
	}
	want := uint64(steps * (steps + 1) / 2) // 1+2+...+10
	for pid := 0; pid < nprocs; pid++ {
		if sums[pid] != want {
			t.Fatalf("pid %d sum = %d, want %d (work lost or repeated)", pid, sums[pid], want)
		}
	}
	// Successful completion drops the snapshot.
	if _, err := st.Latest("job"); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("snapshot not dropped: %v", err)
	}
}

func TestResumeProcCountMismatch(t *testing.T) {
	st := NewStore(nil)
	if err := st.Save("job", 2, [][]byte{u64(1), u64(2)}); err != nil {
		t.Fatal(err)
	}
	err := Resume(st, "job", 3, 1, func(p *bsp.Proc) error { return nil })
	if err == nil {
		t.Fatal("mismatched proc count accepted")
	}
}

func TestResumeFreshStart(t *testing.T) {
	st := NewStore(nil)
	ran := make([]atomic.Int32, 1)
	err := Resume(st, "fresh", 2, 1, func(p *bsp.Proc) error {
		if p.Restored() != nil {
			return errors.New("fresh run saw restored state")
		}
		ran[0].Add(1)
		return p.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran[0].Load() != 2 {
		t.Fatalf("ran = %d", ran[0].Load())
	}
}
