package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"integrade/internal/bsp"
	"integrade/internal/orb"
)

// FileStore persists snapshots to a directory, one file per application, so
// a restarted cluster manager can resume applications across process
// crashes — the durability the in-memory Store lacks. Snapshots use the
// portable wire encoding, so files move freely between architectures.
//
// It is safe for concurrent use (each Save writes a temp file and renames).
type FileStore struct {
	dir string
	now func() time.Time
}

// NewFileStore returns a FileStore rooted at dir, creating it if needed.
func NewFileStore(dir string, now func() time.Time) (*FileStore, error) {
	if now == nil {
		now = time.Now
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: create store dir: %w", err)
	}
	return &FileStore{dir: dir, now: now}, nil
}

// Dir returns the store's directory.
func (fs *FileStore) Dir() string { return fs.dir }

func (fs *FileStore) path(appID string) string {
	return filepath.Join(fs.dir, sanitize(appID)+".ckpt")
}

// Save stores (replaces) the snapshot for an application, atomically.
func (fs *FileStore) Save(appID string, superstep int, states [][]byte) error {
	if appID == "" {
		return errors.New("checkpoint: empty app ID")
	}
	cp := Snapshot{
		AppID:     appID,
		Superstep: superstep,
		States:    states,
		TakenAt:   fs.now(),
	}
	var e orb.Encoder
	cp.Encode(&e)
	tmp, err := os.CreateTemp(fs.dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("checkpoint: temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(e.Bytes()); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmpName)
		return fmt.Errorf("checkpoint: write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("checkpoint: close: %w", err)
	}
	if err := os.Rename(tmpName, fs.path(appID)); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("checkpoint: rename: %w", err)
	}
	return nil
}

// Latest returns the stored snapshot for an application.
func (fs *FileStore) Latest(appID string) (Snapshot, error) {
	data, err := os.ReadFile(fs.path(appID))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return Snapshot{}, fmt.Errorf("%w for %q", ErrNoSnapshot, appID)
		}
		return Snapshot{}, fmt.Errorf("checkpoint: read: %w", err)
	}
	cp, err := DecodeSnapshot(orb.NewDecoder(data))
	if err != nil {
		return Snapshot{}, fmt.Errorf("checkpoint: decode %q: %w", appID, err)
	}
	return cp, nil
}

// Drop removes an application's snapshot file.
func (fs *FileStore) Drop(appID string) {
	_ = os.Remove(fs.path(appID))
}

// Apps lists applications with snapshot files, sorted.
func (st *FileStore) Apps() []string {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".ckpt") || strings.HasPrefix(name, ".") {
			continue
		}
		out = append(out, strings.TrimSuffix(name, ".ckpt"))
	}
	sort.Strings(out)
	return out
}

// Sink adapts the file store to bsp.CheckpointSink for one application.
func (fs *FileStore) Sink(appID string) bsp.CheckpointSink {
	return sinkFunc(func(superstep int, states [][]byte) error {
		return fs.Save(appID, superstep, states)
	})
}

// sanitize keeps app IDs filesystem-safe.
func sanitize(id string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, id)
}
