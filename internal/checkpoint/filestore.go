package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"integrade/internal/bsp"
	"integrade/internal/orb"
)

// Checkpoint files start with a fixed magic followed by a CRC32 (IEEE) of
// the payload, both big-endian; a record whose checksum does not match is
// corrupt (torn write, bit rot) and is never restored from.
var fileMagic = [4]byte{'I', 'C', 'K', '1'}

const fileHeaderLen = 8 // magic + crc32

// prevSuffix is appended to a snapshot's previous epoch, kept as the
// fallback when the current file fails its integrity check.
const prevSuffix = ".prev"

// ErrCorrupt indicates a checkpoint file failed its CRC32 integrity check.
var ErrCorrupt = errors.New("checkpoint: corrupt snapshot file")

// FileStore persists snapshots to a directory, one file per application, so
// a restarted cluster manager can resume applications across process
// crashes — the durability the in-memory Store lacks. Snapshots use the
// portable wire encoding, so files move freely between architectures.
//
// Each record carries a CRC32 integrity header, and Save keeps the previous
// epoch next to the new one: when the current file is corrupt, Latest falls
// back to the previous epoch (one superstep window of lost progress) instead
// of failing the resume outright.
//
// It is safe for concurrent use (each Save writes a temp file and renames).
type FileStore struct {
	dir string
	now func() time.Time
	log *slog.Logger
}

// FileStoreOption configures a FileStore.
type FileStoreOption func(*FileStore)

// WithFileStoreLogger sets the logger corruption fallbacks are reported to.
func WithFileStoreLogger(log *slog.Logger) FileStoreOption {
	return func(fs *FileStore) { fs.log = log }
}

// NewFileStore returns a FileStore rooted at dir, creating it if needed.
func NewFileStore(dir string, now func() time.Time, opts ...FileStoreOption) (*FileStore, error) {
	if now == nil {
		now = time.Now
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: create store dir: %w", err)
	}
	fs := &FileStore{dir: dir, now: now, log: slog.New(slog.DiscardHandler)}
	for _, opt := range opts {
		opt(fs)
	}
	return fs, nil
}

// Dir returns the store's directory.
func (fs *FileStore) Dir() string { return fs.dir }

func (fs *FileStore) path(appID string) string {
	return filepath.Join(fs.dir, sanitize(appID)+".ckpt")
}

// Save stores the snapshot for an application, atomically. The previously
// current file (if any) is rotated to the ".prev" fallback first, so two
// epochs exist on disk at all times.
func (fs *FileStore) Save(appID string, superstep int, states [][]byte) error {
	if appID == "" {
		return errors.New("checkpoint: empty app ID")
	}
	cp := Snapshot{
		AppID:     appID,
		Superstep: superstep,
		States:    states,
		TakenAt:   fs.now(),
	}
	var e orb.Encoder
	cp.Encode(&e)
	payload := e.Bytes()
	buf := make([]byte, fileHeaderLen+len(payload))
	copy(buf, fileMagic[:])
	binary.BigEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[fileHeaderLen:], payload)

	tmp, err := os.CreateTemp(fs.dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("checkpoint: temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmpName)
		return fmt.Errorf("checkpoint: write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("checkpoint: close: %w", err)
	}
	path := fs.path(appID)
	// Keep the old epoch as the corruption fallback. A failed rotation is
	// not fatal — the new epoch still lands.
	if _, err := os.Stat(path); err == nil {
		_ = os.Rename(path, path+prevSuffix)
	}
	if err := os.Rename(tmpName, path); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("checkpoint: rename: %w", err)
	}
	return nil
}

// Latest returns the stored snapshot for an application. A current file that
// fails its integrity check is reported and the previous epoch is restored
// instead; only when both epochs are unusable does Latest fail.
func (fs *FileStore) Latest(appID string) (Snapshot, error) {
	path := fs.path(appID)
	cp, err := fs.load(path, appID)
	if err == nil {
		return cp, nil
	}
	if errors.Is(err, os.ErrNotExist) {
		return Snapshot{}, fmt.Errorf("%w for %q", ErrNoSnapshot, appID)
	}
	fs.log.Warn("checkpoint corrupt, falling back to previous epoch",
		"app", appID, "err", err)
	prev, perr := fs.load(path+prevSuffix, appID)
	if perr != nil {
		if errors.Is(perr, os.ErrNotExist) {
			return Snapshot{}, err
		}
		return Snapshot{}, fmt.Errorf("checkpoint: both epochs unusable for %q: %v; previous: %w", appID, err, perr)
	}
	return prev, nil
}

// load reads and verifies one snapshot file.
func (fs *FileStore) load(path, appID string) (Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return Snapshot{}, err
		}
		return Snapshot{}, fmt.Errorf("checkpoint: read: %w", err)
	}
	payload := data
	if len(data) >= fileHeaderLen && [4]byte(data[:4]) == fileMagic {
		payload = data[fileHeaderLen:]
		want := binary.BigEndian.Uint32(data[4:8])
		if got := crc32.ChecksumIEEE(payload); got != want {
			return Snapshot{}, fmt.Errorf("%w: %q crc 0x%08x, want 0x%08x", ErrCorrupt, appID, got, want)
		}
	}
	cp, err := DecodeSnapshot(orb.NewDecoder(payload))
	if err != nil {
		return Snapshot{}, fmt.Errorf("checkpoint: decode %q: %w", appID, err)
	}
	return cp, nil
}

// Drop removes an application's snapshot files (both epochs).
func (fs *FileStore) Drop(appID string) {
	_ = os.Remove(fs.path(appID))
	_ = os.Remove(fs.path(appID) + prevSuffix)
}

// Apps lists applications with snapshot files, sorted.
func (st *FileStore) Apps() []string {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".ckpt") || strings.HasPrefix(name, ".") {
			continue
		}
		out = append(out, strings.TrimSuffix(name, ".ckpt"))
	}
	sort.Strings(out)
	return out
}

// Sink adapts the file store to bsp.CheckpointSink for one application.
func (fs *FileStore) Sink(appID string) bsp.CheckpointSink {
	return sinkFunc(func(superstep int, states [][]byte) error {
		return fs.Save(appID, superstep, states)
	})
}

// sanitize keeps app IDs filesystem-safe.
func sanitize(id string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, id)
}
