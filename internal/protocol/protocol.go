// Package protocol defines the wire-level messages of InteGrade's
// intra-cluster protocols, shared by the LRM and GRM:
//
//   - the Information Update Protocol (LRM → GRM periodic NodeStatus);
//   - the Resource Reservation and Execution Protocol (GRM → LRM
//     reserve/execute/cancel, LRM → GRM task notifications);
//   - application submission records (ASCT → GRM).
//
// These correspond to the CORBA IDL interfaces of the original system.
package protocol

import (
	"fmt"
	"time"

	"integrade/internal/orb"
	"integrade/internal/resource"
)

// Object adapter keys for the two managers.
const (
	GRMKey = "grm"
	LRMKey = "lrm"
)

// Operation names.
const (
	// GRM operations.
	OpUpdate    = "update"    // LRM pushes NodeStatus
	OpSubmit    = "submit"    // ASCT submits an application
	OpNotify    = "notify"    // LRM reports a task event
	OpAppStatus = "appStatus" // ASCT polls application status
	OpCancelApp = "cancelApp" // ASCT aborts an application
	OpListApps  = "listApps"  // ASCT enumerates applications
	OpPeerInfo  = "peerInfo"  // hierarchy: cluster summary exchange
	OpReplicate = "replicate" // primary GRM streams state to its standby
	OpReconcile = "reconcile" // LRM syncs its running tasks after re-registering
	OpDeparting = "departing" // LRM announces a predicted owner-driven departure

	// LRM operations.
	OpReserve   = "reserve"
	OpRelease   = "release"
	OpExecute   = "execute"
	OpCancel    = "cancel"
	OpNodeState = "nodeState"
)

// NodeStatus is one Information Update Protocol message: the LRM's
// description of its node at an instant.
type NodeStatus struct {
	NodeID   string
	LRMRef   orb.ObjectRef
	Platform resource.Platform
	LANID    string
	// Capacity is the machine's total hardware capacity.
	Capacity resource.Vector
	// GridFree is what the grid could commit right now: the NCC share minus
	// reservations and running tasks. Zero when sharing is disallowed.
	GridFree resource.Vector
	// Dedicated marks machines reserved for the grid.
	Dedicated bool
	// OwnerBusy reports whether the owner is actively using the machine.
	OwnerBusy bool
	// PredictedIdle is the node-local LUPA forecast of the remaining idle
	// span (zero when untrained or not idle).
	PredictedIdle time.Duration
	// Timestamp is the LRM-side send time, used for staleness accounting.
	Timestamp time.Time
	// Windows is the node-local LUPA availability forecast: intervals the
	// owner is predicted to leave the machine idle, with a confidence score
	// in [0,1]. Empty when the analyzer is untrained. Window-aware GRM
	// placement fits task runtimes inside them.
	Windows []AvailWindow
}

// AvailWindow is the wire form of one forecast availability window.
type AvailWindow struct {
	Start      time.Time
	End        time.Time
	Confidence float64
}

// Encode writes the status.
func (s NodeStatus) Encode(e *orb.Encoder) {
	e.PutString(s.NodeID)
	EncodeRef(e, s.LRMRef)
	e.PutString(s.Platform.Arch)
	e.PutString(s.Platform.OS)
	e.PutString(s.LANID)
	EncodeVector(e, s.Capacity)
	EncodeVector(e, s.GridFree)
	e.PutBool(s.Dedicated)
	e.PutBool(s.OwnerBusy)
	e.PutDuration(s.PredictedIdle)
	e.PutTime(s.Timestamp)
	e.PutU32(uint32(len(s.Windows)))
	for _, w := range s.Windows {
		e.PutTime(w.Start)
		e.PutTime(w.End)
		e.PutF64(w.Confidence)
	}
}

// DecodeNodeStatus reads a NodeStatus.
func DecodeNodeStatus(d *orb.Decoder) (NodeStatus, error) {
	s := NodeStatus{
		NodeID: d.String(),
		LRMRef: DecodeRef(d),
	}
	s.Platform.Arch = d.String()
	s.Platform.OS = d.String()
	s.LANID = d.String()
	s.Capacity = DecodeVector(d)
	s.GridFree = DecodeVector(d)
	s.Dedicated = d.Bool()
	s.OwnerBusy = d.Bool()
	s.PredictedIdle = d.Duration()
	s.Timestamp = d.Time()
	n := d.U32()
	if err := d.Err(); err != nil {
		return NodeStatus{}, err
	}
	if n > orb.MaxSliceLen {
		return NodeStatus{}, fmt.Errorf("protocol: node status with %d windows", n)
	}
	for i := uint32(0); i < n; i++ {
		s.Windows = append(s.Windows, AvailWindow{
			Start:      d.Time(),
			End:        d.Time(),
			Confidence: d.F64(),
		})
	}
	return s, d.Err()
}

// ReserveRequest asks an LRM to hold resources (negotiation phase).
type ReserveRequest struct {
	Holder string // application/request identifier
	Amount resource.Vector
	TTL    time.Duration // how long the hold may stand before execution
	// Epoch is the issuing manager's fencing epoch (its election term). An
	// LRM refuses requests whose epoch is older than the newest it has seen,
	// so a deposed primary cannot place work. Zero means unfenced (a legacy
	// single-primary manager) and is always accepted.
	Epoch int
}

// Encode writes the request.
func (r ReserveRequest) Encode(e *orb.Encoder) {
	e.PutString(r.Holder)
	EncodeVector(e, r.Amount)
	e.PutDuration(r.TTL)
	e.PutInt(r.Epoch)
}

// DecodeReserveRequest reads a ReserveRequest.
func DecodeReserveRequest(d *orb.Decoder) (ReserveRequest, error) {
	r := ReserveRequest{
		Holder: d.String(),
		Amount: DecodeVector(d),
		TTL:    d.Duration(),
	}
	r.Epoch = d.Int()
	return r, d.Err()
}

// ReserveReply is the LRM's answer: granted with a reservation ID, or
// refused with a reason — the signal that sends the GRM to the next
// candidate.
type ReserveReply struct {
	Granted       bool
	ReservationID string
	Reason        string
}

// Encode writes the reply.
func (r ReserveReply) Encode(e *orb.Encoder) {
	e.PutBool(r.Granted)
	e.PutString(r.ReservationID)
	e.PutString(r.Reason)
}

// DecodeReserveReply reads a ReserveReply.
func DecodeReserveReply(d *orb.Decoder) (ReserveReply, error) {
	r := ReserveReply{
		Granted:       d.Bool(),
		ReservationID: d.String(),
		Reason:        d.String(),
	}
	return r, d.Err()
}

// ExecuteRequest binds a granted reservation to a concrete task.
type ExecuteRequest struct {
	ReservationID string
	TaskID        string
	AppID         string
	Work          float64 // MI
	Alloc         resource.Vector
	// InitialProgress restores a checkpointed task after migration.
	InitialProgress float64
	// Epoch is the issuing manager's fencing epoch; see ReserveRequest.
	Epoch int
}

// Encode writes the request.
func (r ExecuteRequest) Encode(e *orb.Encoder) {
	e.PutString(r.ReservationID)
	e.PutString(r.TaskID)
	e.PutString(r.AppID)
	e.PutF64(r.Work)
	EncodeVector(e, r.Alloc)
	e.PutF64(r.InitialProgress)
	e.PutInt(r.Epoch)
}

// DecodeExecuteRequest reads an ExecuteRequest.
func DecodeExecuteRequest(d *orb.Decoder) (ExecuteRequest, error) {
	r := ExecuteRequest{
		ReservationID: d.String(),
		TaskID:        d.String(),
		AppID:         d.String(),
		Work:          d.F64(),
		Alloc:         DecodeVector(d),
	}
	r.InitialProgress = d.F64()
	r.Epoch = d.Int()
	return r, d.Err()
}

// TaskEventKind classifies LRM → GRM task notifications.
type TaskEventKind int

// Task event kinds.
const (
	TaskEventDone TaskEventKind = iota + 1
	TaskEventEvicted
	TaskEventProgress
	// TaskEventDrained reports a task cancelled locally by a gracefully
	// departing node: the LRM captured the exact progress, so the GRM can
	// requeue the task with zero lost work instead of rolling back to the
	// last checkpoint boundary.
	TaskEventDrained
)

// String implements fmt.Stringer.
func (k TaskEventKind) String() string {
	switch k {
	case TaskEventDone:
		return "done"
	case TaskEventEvicted:
		return "evicted"
	case TaskEventProgress:
		return "progress"
	case TaskEventDrained:
		return "drained"
	default:
		return "unknown"
	}
}

// TaskEvent is an LRM → GRM notification about a task.
type TaskEvent struct {
	Kind     TaskEventKind
	AppID    string
	TaskID   string
	NodeID   string
	Progress float64 // MI completed at event time
	At       time.Time
}

// Encode writes the event.
func (ev TaskEvent) Encode(e *orb.Encoder) {
	e.PutU8(uint8(ev.Kind))
	e.PutString(ev.AppID)
	e.PutString(ev.TaskID)
	e.PutString(ev.NodeID)
	e.PutF64(ev.Progress)
	e.PutTime(ev.At)
}

// DecodeTaskEvent reads a TaskEvent.
func DecodeTaskEvent(d *orb.Decoder) (TaskEvent, error) {
	ev := TaskEvent{
		Kind:     TaskEventKind(d.U8()),
		AppID:    d.String(),
		TaskID:   d.String(),
		NodeID:   d.String(),
		Progress: d.F64(),
		At:       d.Time(),
	}
	return ev, d.Err()
}

// DepartureNotice is the LRM → GRM announcement that the node predicts an
// owner-driven departure: the local LUPA forecast says the owner returns at
// Deadline, so the node is draining its grid tasks (each reported via
// TaskEventDrained) and should be marked Departing — trader offers
// withdrawn immediately, but not declared dead by the failure detector.
// This is the graceful-departure fast path; the heartbeat-miss Suspect
// threshold remains the fallback for genuine crashes.
type DepartureNotice struct {
	NodeID string
	// Deadline is the predicted departure instant (the end of the node's
	// current availability window).
	Deadline time.Time
	// At is the LRM-side send time.
	At time.Time
}

// Encode writes the notice.
func (n DepartureNotice) Encode(e *orb.Encoder) {
	e.PutString(n.NodeID)
	e.PutTime(n.Deadline)
	e.PutTime(n.At)
}

// DecodeDepartureNotice reads a DepartureNotice.
func DecodeDepartureNotice(d *orb.Decoder) (DepartureNotice, error) {
	n := DepartureNotice{
		NodeID:   d.String(),
		Deadline: d.Time(),
		At:       d.Time(),
	}
	return n, d.Err()
}

// TaskClaim is one entry of an LRM's reconcile report: a task the node is
// currently running, with the application it believes owns it.
type TaskClaim struct {
	TaskID string
	AppID  string
}

// ReconcileRequest is the LRM → GRM exchange that follows re-registration
// with a (possibly new) GRM: the node reports every task it is running, and
// the GRM answers with the task IDs it does not recognize, which the LRM
// then cancels locally. After a warm failover the replicated state covers
// all claims and nothing is cancelled; after a cold rebuild the placeholder
// tasks of the dead manager's placements are reaped so their capacity frees
// up for re-placement.
type ReconcileRequest struct {
	NodeID string
	Claims []TaskClaim
}

// Encode writes the request.
func (r ReconcileRequest) Encode(e *orb.Encoder) {
	e.PutString(r.NodeID)
	e.PutU32(uint32(len(r.Claims)))
	for _, c := range r.Claims {
		e.PutString(c.TaskID)
		e.PutString(c.AppID)
	}
}

// DecodeReconcileRequest reads a ReconcileRequest.
func DecodeReconcileRequest(d *orb.Decoder) (ReconcileRequest, error) {
	r := ReconcileRequest{NodeID: d.String()}
	n := d.U32()
	if err := d.Err(); err != nil {
		return ReconcileRequest{}, err
	}
	if n > orb.MaxSliceLen {
		return ReconcileRequest{}, fmt.Errorf("protocol: reconcile with %d claims", n)
	}
	for i := uint32(0); i < n; i++ {
		r.Claims = append(r.Claims, TaskClaim{TaskID: d.String(), AppID: d.String()})
	}
	return r, d.Err()
}

// EncodeVector writes a resource vector.
func EncodeVector(e *orb.Encoder, v resource.Vector) {
	e.PutF64(v.MIPS)
	e.PutF64(v.RAMMB)
	e.PutF64(v.DiskMB)
	e.PutF64(v.NetMbps)
}

// DecodeVector reads a resource vector.
func DecodeVector(d *orb.Decoder) resource.Vector {
	return resource.Vector{
		MIPS:    d.F64(),
		RAMMB:   d.F64(),
		DiskMB:  d.F64(),
		NetMbps: d.F64(),
	}
}

// EncodeRef writes an object reference.
func EncodeRef(e *orb.Encoder, ref orb.ObjectRef) {
	e.PutString(ref.Endpoint.Net)
	e.PutString(ref.Endpoint.Addr)
	e.PutString(ref.Key)
}

// DecodeRef reads an object reference.
func DecodeRef(d *orb.Decoder) orb.ObjectRef {
	return orb.ObjectRef{
		Endpoint: orb.Endpoint{Net: d.String(), Addr: d.String()},
		Key:      d.String(),
	}
}
