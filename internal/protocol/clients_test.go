package protocol

import (
	"testing"
	"time"

	"integrade/internal/orb"
	"integrade/internal/resource"
)

// fakeManagers implements both manager interfaces in-memory to exercise the
// typed stubs end to end over the loopback ORB.
type fakeManagers struct {
	updates      []NodeStatus
	events       []TaskEvent
	apps         map[string]AppStatus
	order        []string
	granted      bool
	executed     []ExecuteRequest
	released     []string
	canceled     []string
	cancelEpochs []int
}

func newFakes() *fakeManagers {
	return &fakeManagers{apps: make(map[string]AppStatus), granted: true}
}

func (f *fakeManagers) grmServant() orb.Servant {
	return orb.NewOpMux().
		Handle(OpUpdate, func(_ string, req *orb.Decoder) (*orb.Encoder, error) {
			s, err := DecodeNodeStatus(req)
			if err != nil {
				return nil, err
			}
			f.updates = append(f.updates, s)
			var e orb.Encoder
			e.PutInt(7)
			return &e, nil
		}).
		Handle(OpSubmit, func(_ string, req *orb.Decoder) (*orb.Encoder, error) {
			spec, err := DecodeApplicationSpec(req)
			if err != nil {
				return nil, err
			}
			id := "app-" + spec.Name
			f.apps[id] = AppStatus{AppID: id, Name: spec.Name, Kind: spec.Kind}
			f.order = append(f.order, id)
			var e orb.Encoder
			e.PutString(id)
			return &e, nil
		}).
		Handle(OpNotify, func(_ string, req *orb.Decoder) (*orb.Encoder, error) {
			ev, err := DecodeTaskEvent(req)
			if err != nil {
				return nil, err
			}
			f.events = append(f.events, ev)
			return &orb.Encoder{}, nil
		}).
		Handle(OpAppStatus, func(_ string, req *orb.Decoder) (*orb.Encoder, error) {
			id := req.String()
			st, ok := f.apps[id]
			if !ok {
				return nil, orb.Errorf(orb.CodeApplication, "unknown app %q", id)
			}
			var e orb.Encoder
			st.Encode(&e)
			return &e, nil
		}).
		Handle(OpCancelApp, func(_ string, req *orb.Decoder) (*orb.Encoder, error) {
			f.canceled = append(f.canceled, req.String())
			return &orb.Encoder{}, nil
		}).
		Handle(OpListApps, func(string, *orb.Decoder) (*orb.Encoder, error) {
			var e orb.Encoder
			e.PutStrings(f.order)
			return &e, nil
		})
}

func (f *fakeManagers) lrmServant() orb.Servant {
	return orb.NewOpMux().
		Handle(OpReserve, func(_ string, req *orb.Decoder) (*orb.Encoder, error) {
			if _, err := DecodeReserveRequest(req); err != nil {
				return nil, err
			}
			reply := ReserveReply{Granted: f.granted, ReservationID: "rsv-1", Reason: "because"}
			var e orb.Encoder
			reply.Encode(&e)
			return &e, nil
		}).
		Handle(OpRelease, func(_ string, req *orb.Decoder) (*orb.Encoder, error) {
			f.released = append(f.released, req.String())
			return &orb.Encoder{}, nil
		}).
		Handle(OpExecute, func(_ string, req *orb.Decoder) (*orb.Encoder, error) {
			r, err := DecodeExecuteRequest(req)
			if err != nil {
				return nil, err
			}
			f.executed = append(f.executed, r)
			return &orb.Encoder{}, nil
		}).
		Handle(OpCancel, func(_ string, req *orb.Decoder) (*orb.Encoder, error) {
			_ = req.String()
			f.cancelEpochs = append(f.cancelEpochs, req.Int())
			var e orb.Encoder
			e.PutF64(123.5)
			return &e, nil
		}).
		Handle(OpNodeState, func(string, *orb.Decoder) (*orb.Encoder, error) {
			s := NodeStatus{NodeID: "n1", Timestamp: time.Unix(5, 0).UTC()}
			var e orb.Encoder
			s.Encode(&e)
			return &e, nil
		})
}

func setup(t *testing.T) (*fakeManagers, *GRMClient, *LRMClient) {
	t.Helper()
	o := orb.New()
	f := newFakes()
	adapter := orb.NewAdapter()
	if err := adapter.Register(GRMKey, f.grmServant()); err != nil {
		t.Fatal(err)
	}
	if err := adapter.Register(LRMKey, f.lrmServant()); err != nil {
		t.Fatal(err)
	}
	ep, err := o.BindLoopback("mgr", adapter)
	if err != nil {
		t.Fatal(err)
	}
	grm := NewGRMClient(o, orb.ObjectRef{Endpoint: ep, Key: GRMKey})
	lrm := NewLRMClient(o, orb.ObjectRef{Endpoint: ep, Key: LRMKey})
	return f, grm, lrm
}

func TestGRMClientRoundTrips(t *testing.T) {
	f, grm, _ := setup(t)
	if grm.Ref().Key != GRMKey {
		t.Fatal("Ref mismatch")
	}

	status := NodeStatus{NodeID: "n1", Timestamp: time.Unix(9, 0).UTC()}
	epoch, err := grm.Update(status)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 7 {
		t.Fatalf("update epoch = %d, want 7", epoch)
	}
	if len(f.updates) != 1 || f.updates[0].NodeID != "n1" {
		t.Fatalf("updates = %+v", f.updates)
	}

	id, err := grm.Submit(ApplicationSpec{
		Name: "demo", Kind: AppSequential, NumTasks: 1, WorkPerTask: 1,
		Alloc: resource.Vector{MIPS: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	if id != "app-demo" {
		t.Fatalf("id = %q", id)
	}

	if err := grm.Notify(TaskEvent{Kind: TaskEventDone, AppID: id, TaskID: "t0", At: time.Unix(1, 0).UTC()}); err != nil {
		t.Fatal(err)
	}
	if len(f.events) != 1 || f.events[0].Kind != TaskEventDone {
		t.Fatalf("events = %+v", f.events)
	}

	st, err := grm.AppStatus(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.AppID != id || st.Name != "demo" {
		t.Fatalf("status = %+v", st)
	}
	if _, err := grm.AppStatus("ghost"); err == nil {
		t.Fatal("ghost app status succeeded")
	}

	ids, err := grm.ListApps()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != id {
		t.Fatalf("ListApps = %v", ids)
	}

	if err := grm.CancelApp(id); err != nil {
		t.Fatal(err)
	}
	if len(f.canceled) != 1 || f.canceled[0] != id {
		t.Fatalf("canceled = %v", f.canceled)
	}
}

func TestLRMClientRoundTrips(t *testing.T) {
	f, _, lrm := setup(t)
	if lrm.Ref().Key != LRMKey {
		t.Fatal("Ref mismatch")
	}

	reply, err := lrm.Reserve(ReserveRequest{Holder: "app", Amount: resource.Vector{MIPS: 10}, TTL: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !reply.Granted || reply.ReservationID != "rsv-1" {
		t.Fatalf("reply = %+v", reply)
	}

	if err := lrm.Execute(ExecuteRequest{ReservationID: "rsv-1", TaskID: "t", Work: 5, Alloc: resource.Vector{MIPS: 10}}); err != nil {
		t.Fatal(err)
	}
	if len(f.executed) != 1 || f.executed[0].TaskID != "t" {
		t.Fatalf("executed = %+v", f.executed)
	}

	if err := lrm.Release("rsv-1"); err != nil {
		t.Fatal(err)
	}
	if len(f.released) != 1 || f.released[0] != "rsv-1" {
		t.Fatalf("released = %v", f.released)
	}

	progress, err := lrm.Cancel("t", 3)
	if err != nil {
		t.Fatal(err)
	}
	if progress != 123.5 {
		t.Fatalf("progress = %v", progress)
	}
	if len(f.cancelEpochs) != 1 || f.cancelEpochs[0] != 3 {
		t.Fatalf("cancel epochs = %v", f.cancelEpochs)
	}

	state, err := lrm.NodeState()
	if err != nil {
		t.Fatal(err)
	}
	if state.NodeID != "n1" {
		t.Fatalf("state = %+v", state)
	}
}

func TestClientsSurfaceTransportErrors(t *testing.T) {
	o := orb.New()
	dead := orb.ObjectRef{Endpoint: orb.Endpoint{Net: orb.NetLoopback, Addr: "nowhere"}, Key: GRMKey}
	grm := NewGRMClient(o, dead)
	if _, err := grm.Update(NodeStatus{}); err == nil {
		t.Fatal("update to dead endpoint succeeded")
	}
	if _, err := grm.Submit(ApplicationSpec{Name: "x", Kind: AppSequential, NumTasks: 1, WorkPerTask: 1}); err == nil {
		t.Fatal("submit to dead endpoint succeeded")
	}
	if _, err := grm.ListApps(); err == nil {
		t.Fatal("list to dead endpoint succeeded")
	}
	lrm := NewLRMClient(o, dead)
	if _, err := lrm.Reserve(ReserveRequest{}); err == nil {
		t.Fatal("reserve to dead endpoint succeeded")
	}
	if _, err := lrm.NodeState(); err == nil {
		t.Fatal("nodeState to dead endpoint succeeded")
	}
	if _, err := lrm.Cancel("x", 0); err == nil {
		t.Fatal("cancel to dead endpoint succeeded")
	}
}
