package protocol

import (
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"integrade/internal/orb"
	"integrade/internal/resource"
)

func TestNodeStatusRoundTrip(t *testing.T) {
	s := NodeStatus{
		NodeID: "node-7",
		LRMRef: orb.ObjectRef{
			Endpoint: orb.Endpoint{Net: orb.NetLoopback, Addr: "cluster-0"},
			Key:      "lrm",
		},
		Platform:      resource.Platform{Arch: "amd64", OS: "linux"},
		LANID:         "lanA",
		Capacity:      resource.Vector{MIPS: 1000, RAMMB: 512, DiskMB: 100, NetMbps: 100},
		GridFree:      resource.Vector{MIPS: 500, RAMMB: 256, DiskMB: 100, NetMbps: 100},
		Dedicated:     false,
		OwnerBusy:     true,
		PredictedIdle: 90 * time.Minute,
		Timestamp:     time.Date(2026, 7, 4, 10, 0, 0, 0, time.UTC),
		Windows: []AvailWindow{
			{
				Start:      time.Date(2026, 7, 4, 10, 0, 0, 0, time.UTC),
				End:        time.Date(2026, 7, 4, 18, 0, 0, 0, time.UTC),
				Confidence: 0.75,
			},
			{
				Start:      time.Date(2026, 7, 5, 0, 0, 0, 0, time.UTC),
				End:        time.Date(2026, 7, 5, 9, 0, 0, 0, time.UTC),
				Confidence: 1,
			},
		},
	}
	var e orb.Encoder
	s.Encode(&e)
	got, err := DecodeNodeStatus(orb.NewDecoder(e.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, s)
	}
}

func TestReserveRoundTrip(t *testing.T) {
	req := ReserveRequest{
		Holder: "app-3",
		Amount: resource.Vector{MIPS: 400, RAMMB: 64},
		TTL:    30 * time.Second,
	}
	var e orb.Encoder
	req.Encode(&e)
	gotReq, err := DecodeReserveRequest(orb.NewDecoder(e.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if gotReq != req {
		t.Fatalf("request round trip = %+v", gotReq)
	}

	rep := ReserveReply{Granted: false, Reason: "insufficient free capacity"}
	e.Reset()
	rep.Encode(&e)
	gotRep, err := DecodeReserveReply(orb.NewDecoder(e.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if gotRep != rep {
		t.Fatalf("reply round trip = %+v", gotRep)
	}
}

func TestExecuteRoundTrip(t *testing.T) {
	req := ExecuteRequest{
		ReservationID:   "rsv-9",
		TaskID:          "app-1/t0",
		AppID:           "app-1",
		Work:            1e6,
		Alloc:           resource.Vector{MIPS: 500, RAMMB: 128},
		InitialProgress: 2.5e5,
	}
	var e orb.Encoder
	req.Encode(&e)
	got, err := DecodeExecuteRequest(orb.NewDecoder(e.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got != req {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestTaskEventRoundTrip(t *testing.T) {
	ev := TaskEvent{
		Kind:     TaskEventEvicted,
		AppID:    "app-1",
		TaskID:   "app-1/t3",
		NodeID:   "node-12",
		Progress: 123456,
		At:       time.Date(2026, 7, 4, 11, 30, 0, 0, time.UTC),
	}
	var e orb.Encoder
	ev.Encode(&e)
	got, err := DecodeTaskEvent(orb.NewDecoder(e.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got != ev {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestApplicationSpecRoundTrip(t *testing.T) {
	linux := resource.Platform{Arch: "amd64", OS: "linux"}
	spec := ApplicationSpec{
		Name:        "render",
		Kind:        AppBSP,
		NumTasks:    100,
		WorkPerTask: 5e6,
		Requirements: resource.Requirements{
			Platform: &linux,
			Min:      resource.Vector{MIPS: 500, RAMMB: 16},
		},
		Constraint:  "lan == 'lanA'",
		Preferences: resource.Preferences{FasterCPU: true, StayIdleWeight: 1},
		Alloc:       resource.Vector{MIPS: 500, RAMMB: 32},
		Topology: &TopologyRequest{
			Groups:    []TopologyGroup{{Nodes: 50, IntraMbps: 100}, {Nodes: 50, IntraMbps: 100}},
			InterMbps: 10,
		},
		CheckpointEveryWork: 1e5,
		RestartEvicted:      true,
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	var e orb.Encoder
	spec.Encode(&e)
	got, err := DecodeApplicationSpec(orb.NewDecoder(e.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != spec.Name || got.Kind != spec.Kind || got.NumTasks != spec.NumTasks {
		t.Fatalf("identity fields: %+v", got)
	}
	if got.Requirements.Platform == nil || *got.Requirements.Platform != linux {
		t.Fatalf("platform: %+v", got.Requirements.Platform)
	}
	if got.Topology == nil || got.Topology.TotalNodes() != 100 || got.Topology.InterMbps != 10 {
		t.Fatalf("topology: %+v", got.Topology)
	}
	if !got.RestartEvicted || got.CheckpointEveryWork != 1e5 {
		t.Fatalf("recovery fields: %+v", got)
	}
	if got.Constraint != spec.Constraint {
		t.Fatalf("constraint: %q", got.Constraint)
	}
}

func TestApplicationSpecValidate(t *testing.T) {
	base := ApplicationSpec{
		Name:        "a",
		Kind:        AppSequential,
		NumTasks:    1,
		WorkPerTask: 100,
	}
	if err := base.Validate(); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		mutate func(*ApplicationSpec)
	}{
		{"no name", func(s *ApplicationSpec) { s.Name = "" }},
		{"bad kind", func(s *ApplicationSpec) { s.Kind = 0 }},
		{"sequential multi-task", func(s *ApplicationSpec) { s.NumTasks = 2 }},
		{"zero work", func(s *ApplicationSpec) { s.WorkPerTask = 0 }},
		{"bsp zero tasks", func(s *ApplicationSpec) { s.Kind = AppBSP; s.NumTasks = 0 }},
		{"topology mismatch", func(s *ApplicationSpec) {
			s.Kind = AppBSP
			s.NumTasks = 4
			s.Topology = &TopologyRequest{Groups: []TopologyGroup{{Nodes: 3}}}
		}},
		{"topology empty group", func(s *ApplicationSpec) {
			s.Kind = AppBSP
			s.NumTasks = 0
			s.Topology = &TopologyRequest{Groups: []TopologyGroup{{Nodes: 0}}}
		}},
		{"negative checkpoint", func(s *ApplicationSpec) { s.CheckpointEveryWork = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := base
			tt.mutate(&s)
			if err := s.Validate(); err == nil {
				t.Fatal("invalid spec accepted")
			}
		})
	}
}

func TestEffectiveAlloc(t *testing.T) {
	s := ApplicationSpec{Requirements: resource.Requirements{Min: resource.Vector{MIPS: 100}}}
	if got := s.EffectiveAlloc(); got.MIPS != 100 {
		t.Fatalf("default alloc = %v", got)
	}
	s.Alloc = resource.Vector{MIPS: 300}
	if got := s.EffectiveAlloc(); got.MIPS != 300 {
		t.Fatalf("explicit alloc = %v", got)
	}
}

func TestAppStatusRoundTripAndDone(t *testing.T) {
	a := AppStatus{
		AppID:        "app-1",
		Name:         "sim",
		Kind:         AppParametric,
		Submitted:    time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC),
		Negotiations: 7,
		Tasks: []TaskStatus{
			{TaskID: "t0", NodeID: "n1", State: TaskDone, Progress: 100, Work: 100},
			{TaskID: "t1", NodeID: "n2", State: TaskRunning, Progress: 50, Work: 100, Restarts: 1},
		},
	}
	if a.Done() {
		t.Fatal("incomplete app reported Done")
	}
	var e orb.Encoder
	a.Encode(&e)
	got, err := DecodeAppStatus(orb.NewDecoder(e.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.AppID != a.AppID || len(got.Tasks) != 2 || got.Negotiations != 7 {
		t.Fatalf("round trip = %+v", got)
	}
	if got.Tasks[1].Restarts != 1 || got.Tasks[1].State != TaskRunning {
		t.Fatalf("task fields = %+v", got.Tasks[1])
	}
	got.Tasks[1].State = TaskDone
	if !got.Done() {
		t.Fatal("complete app not Done")
	}
	if (AppStatus{}).Done() {
		t.Fatal("empty app reported Done")
	}
}

// Property: NodeStatus round-trips for arbitrary numeric contents.
func TestNodeStatusProperty(t *testing.T) {
	f := func(id string, mips, ram float64, busy, ded bool) bool {
		s := NodeStatus{
			NodeID:    id,
			Platform:  resource.Platform{Arch: "amd64", OS: "linux"},
			Capacity:  resource.Vector{MIPS: mips, RAMMB: ram},
			OwnerBusy: busy,
			Dedicated: ded,
			Timestamp: time.Unix(1234, 0).UTC(),
		}
		var e orb.Encoder
		s.Encode(&e)
		got, err := DecodeNodeStatus(orb.NewDecoder(e.Bytes()))
		if err != nil {
			return false
		}
		// NaN-safe comparison.
		if mips == mips && got.Capacity.MIPS != mips {
			return false
		}
		return got.NodeID == id && got.OwnerBusy == busy && got.Dedicated == ded
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range []AppKind{AppSequential, AppParametric, AppBSP, AppKind(9)} {
		if k.String() == "" {
			t.Fatal("empty AppKind string")
		}
	}
	for _, s := range []TaskState{TaskPending, TaskRunning, TaskDone, TaskEvicted, TaskFailed, TaskState(9)} {
		if s.String() == "" {
			t.Fatal("empty TaskState string")
		}
	}
	for _, k := range []TaskEventKind{TaskEventDone, TaskEventEvicted, TaskEventProgress, TaskEventKind(9)} {
		if k.String() == "" {
			t.Fatal("empty TaskEventKind string")
		}
	}
}
