package protocol

import (
	"integrade/internal/orb"
)

// GRMClient is the typed stub the LRM, ASCT and peer clusters use to invoke
// a GRM.
type GRMClient struct {
	inv orb.Invoker
	ref orb.ObjectRef
}

// NewGRMClient returns a stub for the GRM at ref.
func NewGRMClient(inv orb.Invoker, ref orb.ObjectRef) *GRMClient {
	return &GRMClient{inv: inv, ref: ref}
}

// Ref returns the target reference.
func (c *GRMClient) Ref() orb.ObjectRef { return c.ref }

// Update pushes a NodeStatus (Information Update Protocol) and returns the
// manager's fencing epoch (0 from an unfenced legacy manager). The LRM
// compares it against the newest epoch it has seen to spot a deposed
// primary still answering.
func (c *GRMClient) Update(s NodeStatus) (int, error) {
	var e orb.Encoder
	s.Encode(&e)
	reply, err := c.inv.Invoke(c.ref, OpUpdate, e.Bytes())
	if err != nil {
		return 0, err
	}
	d := orb.NewDecoder(reply)
	epoch := d.Int()
	if err := d.Err(); err != nil {
		return 0, orb.Errorf(orb.CodeMarshal, "update reply: %v", err)
	}
	return epoch, nil
}

// Submit submits an application and returns its assigned ID.
func (c *GRMClient) Submit(spec ApplicationSpec) (string, error) {
	var e orb.Encoder
	spec.Encode(&e)
	reply, err := c.inv.Invoke(c.ref, OpSubmit, e.Bytes())
	if err != nil {
		return "", err
	}
	d := orb.NewDecoder(reply)
	id := d.String()
	if err := d.Err(); err != nil {
		return "", orb.Errorf(orb.CodeMarshal, "submit reply: %v", err)
	}
	return id, nil
}

// Notify reports a task event.
func (c *GRMClient) Notify(ev TaskEvent) error {
	var e orb.Encoder
	ev.Encode(&e)
	_, err := c.inv.Invoke(c.ref, OpNotify, e.Bytes())
	return err
}

// Departing announces a predicted owner-driven departure: the GRM withdraws
// the node's trader offers and marks it Departing (distinct from Suspect)
// so the failure detector does not burn its heartbeat-miss threshold on a
// node that politely said goodbye.
func (c *GRMClient) Departing(n DepartureNotice) error {
	var e orb.Encoder
	n.Encode(&e)
	_, err := c.inv.Invoke(c.ref, OpDeparting, e.Bytes())
	return err
}

// CancelApp aborts an application: running tasks are cancelled on their
// nodes, pending tasks are dropped.
func (c *GRMClient) CancelApp(appID string) error {
	var e orb.Encoder
	e.PutString(appID)
	_, err := c.inv.Invoke(c.ref, OpCancelApp, e.Bytes())
	return err
}

// ListApps returns the IDs of all applications known to the GRM, sorted.
func (c *GRMClient) ListApps() ([]string, error) {
	reply, err := c.inv.Invoke(c.ref, OpListApps, nil)
	if err != nil {
		return nil, err
	}
	d := orb.NewDecoder(reply)
	ids := d.Strings()
	if err := d.Err(); err != nil {
		return nil, orb.Errorf(orb.CodeMarshal, "listApps reply: %v", err)
	}
	return ids, nil
}

// Reconcile reports the node's running tasks after (re-)registration and
// returns the task IDs the GRM does not recognize — the orphans the LRM
// should cancel locally.
func (c *GRMClient) Reconcile(req ReconcileRequest) ([]string, error) {
	var e orb.Encoder
	req.Encode(&e)
	reply, err := c.inv.Invoke(c.ref, OpReconcile, e.Bytes())
	if err != nil {
		return nil, err
	}
	d := orb.NewDecoder(reply)
	orphans := d.Strings()
	if err := d.Err(); err != nil {
		return nil, orb.Errorf(orb.CodeMarshal, "reconcile reply: %v", err)
	}
	return orphans, nil
}

// AppStatus fetches an application's status.
func (c *GRMClient) AppStatus(appID string) (AppStatus, error) {
	var e orb.Encoder
	e.PutString(appID)
	reply, err := c.inv.Invoke(c.ref, OpAppStatus, e.Bytes())
	if err != nil {
		return AppStatus{}, err
	}
	return DecodeAppStatus(orb.NewDecoder(reply))
}

// LRMClient is the typed stub the GRM uses to negotiate with an LRM.
type LRMClient struct {
	inv orb.Invoker
	ref orb.ObjectRef
}

// NewLRMClient returns a stub for the LRM at ref.
func NewLRMClient(inv orb.Invoker, ref orb.ObjectRef) *LRMClient {
	return &LRMClient{inv: inv, ref: ref}
}

// Ref returns the target reference.
func (c *LRMClient) Ref() orb.ObjectRef { return c.ref }

// Reserve asks the LRM to hold resources.
func (c *LRMClient) Reserve(req ReserveRequest) (ReserveReply, error) {
	var e orb.Encoder
	req.Encode(&e)
	reply, err := c.inv.Invoke(c.ref, OpReserve, e.Bytes())
	if err != nil {
		return ReserveReply{}, err
	}
	return DecodeReserveReply(orb.NewDecoder(reply))
}

// Release cancels a granted reservation that will not be used (e.g. an
// abandoned gang placement), freeing the hold before its TTL expires.
func (c *LRMClient) Release(reservationID string) error {
	var e orb.Encoder
	e.PutString(reservationID)
	_, err := c.inv.Invoke(c.ref, OpRelease, e.Bytes())
	return err
}

// Execute binds a reservation to a task and starts it.
func (c *LRMClient) Execute(req ExecuteRequest) error {
	var e orb.Encoder
	req.Encode(&e)
	_, err := c.inv.Invoke(c.ref, OpExecute, e.Bytes())
	return err
}

// Cancel aborts a running task on behalf of the manager with the given
// fencing epoch (0 = unfenced). It returns the task's progress at
// cancellation (0 if the task was unknown or the epoch stale).
func (c *LRMClient) Cancel(taskID string, epoch int) (float64, error) {
	var e orb.Encoder
	e.PutString(taskID)
	e.PutInt(epoch)
	reply, err := c.inv.Invoke(c.ref, OpCancel, e.Bytes())
	if err != nil {
		return 0, err
	}
	d := orb.NewDecoder(reply)
	progress := d.F64()
	if err := d.Err(); err != nil {
		return 0, orb.Errorf(orb.CodeMarshal, "cancel reply: %v", err)
	}
	return progress, nil
}

// NodeState fetches the LRM's current NodeStatus directly.
func (c *LRMClient) NodeState() (NodeStatus, error) {
	reply, err := c.inv.Invoke(c.ref, OpNodeState, nil)
	if err != nil {
		return NodeStatus{}, err
	}
	return DecodeNodeStatus(orb.NewDecoder(reply))
}
