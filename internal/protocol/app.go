package protocol

import (
	"fmt"
	"time"

	"integrade/internal/orb"
	"integrade/internal/resource"
)

// AppKind classifies applications by their parallelism model, covering the
// paper's "broad range of parallel applications".
type AppKind int

// Application kinds.
const (
	// AppSequential is a single-process application.
	AppSequential AppKind = iota + 1
	// AppParametric is a bag of independent tasks (parameter sweep) — the
	// BOINC-style workload with "negligible data dependencies".
	AppParametric
	// AppBSP is a Bulk-Synchronous Parallel application whose processes
	// synchronize at superstep barriers.
	AppBSP
)

// String implements fmt.Stringer.
func (k AppKind) String() string {
	switch k {
	case AppSequential:
		return "sequential"
	case AppParametric:
		return "parametric"
	case AppBSP:
		return "bsp"
	default:
		return fmt.Sprintf("AppKind(%d)", int(k))
	}
}

// TopologyGroup is one node group in a virtual topology request.
type TopologyGroup struct {
	Nodes     int     // number of processes in this group
	IntraMbps float64 // minimum bandwidth between group members
}

// TopologyRequest expresses the paper's virtual-topology example: "two
// groups of 50 nodes, each group connected internally by a 100 Mbps network
// and the two groups connected by a 10 Mbps network".
type TopologyRequest struct {
	Groups    []TopologyGroup
	InterMbps float64 // minimum bandwidth between groups
}

// TotalNodes returns the node count across all groups.
func (t TopologyRequest) TotalNodes() int {
	n := 0
	for _, g := range t.Groups {
		n += g.Nodes
	}
	return n
}

// ApplicationSpec is a submission record: what to run and under which
// prerequisites (platform), requirements (minimums) and preferences.
type ApplicationSpec struct {
	Name string
	Kind AppKind
	// NumTasks is the process count (1 for sequential).
	NumTasks int
	// WorkPerTask is each process's computation in MI.
	WorkPerTask float64
	// Requirements are hard per-node constraints.
	Requirements resource.Requirements
	// Constraint optionally adds a raw trader constraint expression.
	Constraint string
	// Preferences order acceptable nodes.
	Preferences resource.Preferences
	// Alloc is the per-process resource allocation to reserve. Zero MIPS
	// defaults to Requirements.Min.
	Alloc resource.Vector
	// Topology optionally requests a virtual topology (BSP apps).
	Topology *TopologyRequest
	// CheckpointEveryWork checkpoints each task every given MI of progress
	// (0 disables checkpointing).
	CheckpointEveryWork float64
	// RestartEvicted re-places evicted tasks automatically (from their last
	// checkpoint when checkpointing is on).
	RestartEvicted bool
}

// Validate reports a descriptive error for malformed specs.
func (s ApplicationSpec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("protocol: application without a name")
	}
	switch s.Kind {
	case AppSequential:
		if s.NumTasks != 1 {
			return fmt.Errorf("protocol: sequential app %q with %d tasks", s.Name, s.NumTasks)
		}
	case AppParametric, AppBSP:
		if s.NumTasks < 1 {
			return fmt.Errorf("protocol: app %q with %d tasks", s.Name, s.NumTasks)
		}
	default:
		return fmt.Errorf("protocol: app %q with unknown kind %d", s.Name, s.Kind)
	}
	if s.WorkPerTask <= 0 {
		return fmt.Errorf("protocol: app %q with non-positive work", s.Name)
	}
	if s.Topology != nil {
		if s.Topology.TotalNodes() != s.NumTasks {
			return fmt.Errorf("protocol: app %q topology covers %d nodes, have %d tasks",
				s.Name, s.Topology.TotalNodes(), s.NumTasks)
		}
		for _, g := range s.Topology.Groups {
			if g.Nodes <= 0 {
				return fmt.Errorf("protocol: app %q topology group with %d nodes", s.Name, g.Nodes)
			}
		}
	}
	if s.CheckpointEveryWork < 0 {
		return fmt.Errorf("protocol: app %q negative checkpoint interval", s.Name)
	}
	return nil
}

// EffectiveAlloc returns the per-process allocation, defaulting to the
// minimum requirements.
func (s ApplicationSpec) EffectiveAlloc() resource.Vector {
	if s.Alloc.IsZero() {
		return s.Requirements.Min
	}
	return s.Alloc
}

// Encode writes the spec.
func (s ApplicationSpec) Encode(e *orb.Encoder) {
	e.PutString(s.Name)
	e.PutU8(uint8(s.Kind))
	e.PutInt(s.NumTasks)
	e.PutF64(s.WorkPerTask)
	if s.Requirements.Platform != nil {
		e.PutBool(true)
		e.PutString(s.Requirements.Platform.Arch)
		e.PutString(s.Requirements.Platform.OS)
	} else {
		e.PutBool(false)
	}
	EncodeVector(e, s.Requirements.Min)
	e.PutString(s.Constraint)
	e.PutBool(s.Preferences.FasterCPU)
	e.PutBool(s.Preferences.MoreRAM)
	e.PutF64(s.Preferences.StayIdleWeight)
	EncodeVector(e, s.Alloc)
	if s.Topology != nil {
		e.PutBool(true)
		e.PutU32(uint32(len(s.Topology.Groups)))
		for _, g := range s.Topology.Groups {
			e.PutInt(g.Nodes)
			e.PutF64(g.IntraMbps)
		}
		e.PutF64(s.Topology.InterMbps)
	} else {
		e.PutBool(false)
	}
	e.PutF64(s.CheckpointEveryWork)
	e.PutBool(s.RestartEvicted)
}

// DecodeApplicationSpec reads an ApplicationSpec.
func DecodeApplicationSpec(d *orb.Decoder) (ApplicationSpec, error) {
	s := ApplicationSpec{
		Name:        d.String(),
		Kind:        AppKind(d.U8()),
		NumTasks:    d.Int(),
		WorkPerTask: d.F64(),
	}
	if d.Bool() {
		p := resource.Platform{Arch: d.String(), OS: d.String()}
		s.Requirements.Platform = &p
	}
	s.Requirements.Min = DecodeVector(d)
	s.Constraint = d.String()
	s.Preferences.FasterCPU = d.Bool()
	s.Preferences.MoreRAM = d.Bool()
	s.Preferences.StayIdleWeight = d.F64()
	s.Alloc = DecodeVector(d)
	if d.Bool() {
		n := d.U32()
		if err := d.Err(); err != nil {
			return ApplicationSpec{}, err
		}
		if n > orb.MaxSliceLen {
			return ApplicationSpec{}, orb.Errorf(orb.CodeMarshal, "topology with %d groups", n)
		}
		topo := &TopologyRequest{Groups: make([]TopologyGroup, n)}
		for i := range topo.Groups {
			topo.Groups[i].Nodes = d.Int()
			topo.Groups[i].IntraMbps = d.F64()
		}
		topo.InterMbps = d.F64()
		s.Topology = topo
	}
	s.CheckpointEveryWork = d.F64()
	s.RestartEvicted = d.Bool()
	return s, d.Err()
}

// TaskState is a scheduler-side task lifecycle state.
type TaskState int

// Task states as seen by the GRM and ASCT.
const (
	TaskPending TaskState = iota + 1
	TaskRunning
	TaskDone
	TaskEvicted
	TaskFailed
	TaskCancelled
)

// String implements fmt.Stringer.
func (s TaskState) String() string {
	switch s {
	case TaskPending:
		return "pending"
	case TaskRunning:
		return "running"
	case TaskDone:
		return "done"
	case TaskEvicted:
		return "evicted"
	case TaskFailed:
		return "failed"
	case TaskCancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("TaskState(%d)", int(s))
	}
}

// TaskStatus is one task's status inside an application.
type TaskStatus struct {
	TaskID   string
	NodeID   string
	State    TaskState
	Progress float64 // MI
	Work     float64 // MI
	Restarts int
}

// AppStatus is the GRM's view of an application, returned to the ASCT.
type AppStatus struct {
	AppID        string
	Name         string
	Kind         AppKind
	Submitted    time.Time
	Finished     time.Time // zero until done
	Tasks        []TaskStatus
	Negotiations int // reservation-protocol rounds spent placing the app
}

// Done reports whether every task completed.
func (a AppStatus) Done() bool {
	if len(a.Tasks) == 0 {
		return false
	}
	for _, t := range a.Tasks {
		if t.State != TaskDone {
			return false
		}
	}
	return true
}

// Encode writes the status.
func (a AppStatus) Encode(e *orb.Encoder) {
	e.PutString(a.AppID)
	e.PutString(a.Name)
	e.PutU8(uint8(a.Kind))
	e.PutTime(a.Submitted)
	e.PutTime(a.Finished)
	e.PutInt(a.Negotiations)
	e.PutU32(uint32(len(a.Tasks)))
	for _, t := range a.Tasks {
		e.PutString(t.TaskID)
		e.PutString(t.NodeID)
		e.PutU8(uint8(t.State))
		e.PutF64(t.Progress)
		e.PutF64(t.Work)
		e.PutInt(t.Restarts)
	}
}

// DecodeAppStatus reads an AppStatus.
func DecodeAppStatus(d *orb.Decoder) (AppStatus, error) {
	a := AppStatus{
		AppID:     d.String(),
		Name:      d.String(),
		Kind:      AppKind(d.U8()),
		Submitted: d.Time(),
		Finished:  d.Time(),
	}
	a.Negotiations = d.Int()
	n := d.U32()
	if err := d.Err(); err != nil {
		return AppStatus{}, err
	}
	if n > orb.MaxSliceLen {
		return AppStatus{}, orb.Errorf(orb.CodeMarshal, "app with %d tasks", n)
	}
	a.Tasks = make([]TaskStatus, n)
	for i := range a.Tasks {
		a.Tasks[i] = TaskStatus{
			TaskID:   d.String(),
			NodeID:   d.String(),
			State:    TaskState(d.U8()),
			Progress: d.F64(),
			Work:     d.F64(),
			Restarts: d.Int(),
		}
	}
	return a, d.Err()
}
