// Package ncc implements the Node Control Center: the owner-facing policy
// that governs when and how much of a machine the grid may use.
//
// Per the paper, owners can set "periods in which they do not want their
// resources to be shared, the portion of resources that can be used by grid
// applications (e.g., 30% of the CPU and 50% of its physical memory), or
// definitions as to when to consider their machine idle", and the system
// "must provide sensible default values ... to protect providers from
// degradation in the quality of service".
package ncc

import (
	"fmt"
	"time"

	"integrade/internal/usage"
)

// Mode selects how grid load coexists with the owner.
type Mode int

// Sharing modes.
const (
	// ModeIdleOnly runs grid tasks only while the machine is idle; an owner
	// return suspends/evicts grid work (Condor-style harvesting).
	ModeIdleOnly Mode = iota + 1
	// ModeShared lets grid tasks use the policy's resource fractions even
	// while the owner is active — the InteGrade feature SETI@home lacks
	// ("the impossibility of using resources of a partially idle node").
	ModeShared
	// ModeGreedy takes the policy's CPU fraction regardless of owner
	// activity. It exists only as the no-QoS-protection baseline in the
	// owner-slowdown experiment; real deployments never use it.
	ModeGreedy
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeIdleOnly:
		return "idle-only"
	case ModeShared:
		return "shared"
	case ModeGreedy:
		return "greedy"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Blackout is a weekly recurring window during which the owner forbids all
// sharing.
type Blackout struct {
	Weekday   time.Weekday
	StartHour float64 // 0..24
	EndHour   float64 // 0..24, > StartHour (no midnight wrap; use two)
}

func (b Blackout) contains(t time.Time) bool {
	if t.Weekday() != b.Weekday {
		return false
	}
	hour := float64(t.Hour()) + float64(t.Minute())/60
	return hour >= b.StartHour && hour < b.EndHour
}

// Policy is one owner's sharing contract.
type Policy struct {
	Mode Mode
	// CPUFraction and RAMFraction cap the share of the machine grid tasks
	// may use (of total capacity), in (0,1].
	CPUFraction float64
	RAMFraction float64
	// IdleAfter is how long the owner must be inactive before the machine
	// counts as idle ("definitions as to when to consider their machine
	// idle").
	IdleAfter time.Duration
	// Blackouts are windows with no sharing at all.
	Blackouts []Blackout
}

// Default returns the conservative defaults the paper calls for: idle-only
// harvesting, half the machine at most, idle after 5 minutes of owner
// inactivity.
func Default() Policy {
	return Policy{
		Mode:        ModeIdleOnly,
		CPUFraction: 0.5,
		RAMFraction: 0.5,
		IdleAfter:   5 * time.Minute,
	}
}

// Generous returns a donate-everything policy for dedicated-leaning owners.
func Generous() Policy {
	return Policy{
		Mode:        ModeShared,
		CPUFraction: 1.0,
		RAMFraction: 0.9,
		IdleAfter:   time.Minute,
	}
}

// Validate reports descriptive errors for out-of-range parameters.
func (p Policy) Validate() error {
	if p.Mode != ModeIdleOnly && p.Mode != ModeShared && p.Mode != ModeGreedy {
		return fmt.Errorf("ncc: invalid mode %d", p.Mode)
	}
	if p.CPUFraction <= 0 || p.CPUFraction > 1 {
		return fmt.Errorf("ncc: CPU fraction %v out of (0,1]", p.CPUFraction)
	}
	if p.RAMFraction <= 0 || p.RAMFraction > 1 {
		return fmt.Errorf("ncc: RAM fraction %v out of (0,1]", p.RAMFraction)
	}
	if p.IdleAfter < 0 {
		return fmt.Errorf("ncc: negative IdleAfter %v", p.IdleAfter)
	}
	for _, b := range p.Blackouts {
		if b.StartHour < 0 || b.EndHour > 24 || b.StartHour >= b.EndHour {
			return fmt.Errorf("ncc: invalid blackout %+v", b)
		}
	}
	return nil
}

// Share is the policy's verdict for one instant.
type Share struct {
	// Allowed is false during blackouts (and, in idle-only mode, while the
	// owner is active or insufficiently idle).
	Allowed bool
	// CPUFrac and RAMFrac are the machine fractions the grid may use now.
	CPUFrac float64
	RAMFrac float64
	// Evict signals that running grid tasks must stop immediately (owner
	// reclaim in idle-only mode, or a blackout starting).
	Evict bool
}

// Evaluate computes the share at time t given the owner's instantaneous
// activity and the duration the owner has been inactive.
func (p Policy) Evaluate(t time.Time, owner usage.Activity, inactiveFor time.Duration) Share {
	for _, b := range p.Blackouts {
		if b.contains(t) {
			return Share{Evict: true}
		}
	}
	switch p.Mode {
	case ModeGreedy:
		return Share{Allowed: true, CPUFrac: p.CPUFraction, RAMFrac: p.RAMFraction}
	case ModeShared:
		// Grid gets min(policy cap, what the owner leaves free).
		cpu := min(p.CPUFraction, 1-owner.CPU)
		ram := min(p.RAMFraction, 1-owner.RAM)
		if cpu <= 0 {
			return Share{Allowed: false}
		}
		return Share{Allowed: true, CPUFrac: cpu, RAMFrac: max(ram, 0)}
	default: // ModeIdleOnly
		if owner.Busy() {
			return Share{Evict: true}
		}
		if inactiveFor < p.IdleAfter {
			return Share{Allowed: false}
		}
		return Share{Allowed: true, CPUFrac: p.CPUFraction, RAMFrac: p.RAMFraction}
	}
}
