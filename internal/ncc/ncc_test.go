package ncc

import (
	"testing"
	"time"

	"integrade/internal/usage"
)

var monday10 = time.Date(2026, 1, 5, 10, 0, 0, 0, time.UTC)

func TestDefaultIsConservativeAndValid(t *testing.T) {
	p := Default()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Mode != ModeIdleOnly {
		t.Fatal("default mode is not idle-only")
	}
	if p.CPUFraction > 0.5 || p.RAMFraction > 0.5 {
		t.Fatal("default fractions too aggressive")
	}
	if err := Generous().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadPolicies(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Policy)
	}{
		{"zero mode", func(p *Policy) { p.Mode = 0 }},
		{"cpu zero", func(p *Policy) { p.CPUFraction = 0 }},
		{"cpu above one", func(p *Policy) { p.CPUFraction = 1.5 }},
		{"ram zero", func(p *Policy) { p.RAMFraction = 0 }},
		{"negative idle", func(p *Policy) { p.IdleAfter = -time.Second }},
		{"inverted blackout", func(p *Policy) {
			p.Blackouts = []Blackout{{Weekday: time.Monday, StartHour: 10, EndHour: 9}}
		}},
		{"blackout beyond 24", func(p *Policy) {
			p.Blackouts = []Blackout{{Weekday: time.Monday, StartHour: 10, EndHour: 25}}
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := Default()
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Fatal("invalid policy accepted")
			}
		})
	}
}

func TestIdleOnlyEvictsOnOwnerReturn(t *testing.T) {
	p := Default()
	busy := usage.Activity{CPU: 0.5}
	s := p.Evaluate(monday10, busy, time.Hour)
	if !s.Evict || s.Allowed {
		t.Fatalf("busy owner: %+v, want eviction", s)
	}
}

func TestIdleOnlyRequiresIdleAfter(t *testing.T) {
	p := Default() // IdleAfter = 5m
	quiet := usage.Activity{CPU: 0.02}
	s := p.Evaluate(monday10, quiet, 2*time.Minute)
	if s.Allowed || s.Evict {
		t.Fatalf("recently-active owner: %+v, want not allowed, no evict", s)
	}
	s = p.Evaluate(monday10, quiet, 10*time.Minute)
	if !s.Allowed {
		t.Fatalf("idle machine not allowed: %+v", s)
	}
	if s.CPUFrac != p.CPUFraction || s.RAMFrac != p.RAMFraction {
		t.Fatalf("idle share = %+v, want policy fractions", s)
	}
}

func TestSharedModeTracksOwnerLoad(t *testing.T) {
	p := Policy{Mode: ModeShared, CPUFraction: 0.5, RAMFraction: 0.5}
	// Owner uses 30% CPU: grid may use min(0.5, 0.7) = 0.5.
	s := p.Evaluate(monday10, usage.Activity{CPU: 0.3, RAM: 0.2}, 0)
	if !s.Allowed || s.CPUFrac != 0.5 {
		t.Fatalf("share = %+v", s)
	}
	// Owner uses 80% CPU: grid squeezed to 0.2.
	s = p.Evaluate(monday10, usage.Activity{CPU: 0.8, RAM: 0.9}, 0)
	if !s.Allowed || s.CPUFrac < 0.19 || s.CPUFrac > 0.21 {
		t.Fatalf("squeezed share = %+v", s)
	}
	if s.RAMFrac < 0.09 || s.RAMFrac > 0.11 {
		t.Fatalf("squeezed RAM = %+v", s)
	}
	// Owner saturates the CPU: not allowed (but no eviction in shared mode).
	s = p.Evaluate(monday10, usage.Activity{CPU: 1.0, RAM: 0.5}, 0)
	if s.Allowed || s.Evict {
		t.Fatalf("saturated: %+v", s)
	}
}

func TestBlackoutAlwaysWins(t *testing.T) {
	p := Generous()
	p.Blackouts = []Blackout{{Weekday: time.Monday, StartHour: 9, EndHour: 12}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	s := p.Evaluate(monday10, usage.Activity{}, time.Hour)
	if s.Allowed || !s.Evict {
		t.Fatalf("blackout: %+v, want eviction", s)
	}
	// Outside the window sharing resumes.
	s = p.Evaluate(monday10.Add(3*time.Hour), usage.Activity{}, time.Hour)
	if !s.Allowed {
		t.Fatalf("after blackout: %+v", s)
	}
	// Other weekday unaffected.
	s = p.Evaluate(monday10.AddDate(0, 0, 1), usage.Activity{}, time.Hour)
	if !s.Allowed {
		t.Fatalf("different weekday: %+v", s)
	}
}

func TestModeString(t *testing.T) {
	if ModeIdleOnly.String() == "" || ModeShared.String() == "" || Mode(9).String() == "" {
		t.Fatal("empty Mode string")
	}
}
