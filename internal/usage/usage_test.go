package usage

import (
	"testing"
	"testing/quick"
	"time"
)

// monday is a weekday reference instant (2026-01-05 was a Monday).
var monday = time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC)

func at(day time.Time, hour, min int) time.Time {
	return day.Add(time.Duration(hour)*time.Hour + time.Duration(min)*time.Minute)
}

func TestTraceDeterminism(t *testing.T) {
	a := NewTrace(OfficeWorker, 42)
	b := NewTrace(OfficeWorker, 42)
	for h := 0; h < 24; h++ {
		when := at(monday, h, 0)
		if a.At(when) != b.At(when) {
			t.Fatalf("traces with same seed diverge at %v", when)
		}
	}
	c := NewTrace(OfficeWorker, 43)
	same := true
	for h := 0; h < 24; h++ {
		when := at(monday, h, 2)
		if a.At(when) != c.At(when) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestOfficeWorkerSchedule(t *testing.T) {
	tr := NewTrace(OfficeWorker, 1)
	// Count busy samples in each band over many seeds to be robust to noise.
	busyFrac := func(hour int) float64 {
		busy := 0
		const n = 40
		for s := 0; s < n; s++ {
			trS := NewTrace(OfficeWorker, int64(s))
			if trS.BusyAt(at(monday, hour, 7)) {
				busy++
			}
		}
		return float64(busy) / n
	}
	if f := busyFrac(10); f < 0.9 {
		t.Fatalf("10:00 weekday busy fraction = %v, want ~1", f)
	}
	if f := busyFrac(15); f < 0.9 {
		t.Fatalf("15:00 weekday busy fraction = %v, want ~1", f)
	}
	if f := busyFrac(3); f > 0.3 {
		t.Fatalf("03:00 weekday busy fraction = %v, want ~0", f)
	}
	// Saturday: office worker absent all day.
	saturday := monday.AddDate(0, 0, 5)
	busyWeekend := 0
	for h := 0; h < 24; h++ {
		if tr.BusyAt(at(saturday, h, 7)) {
			busyWeekend++
		}
	}
	if busyWeekend > 6 {
		t.Fatalf("office worker busy %d/24 hours on Saturday", busyWeekend)
	}
}

func TestLunchDip(t *testing.T) {
	// Averaged across seeds, 12:30 should be much quieter than 11:00.
	var work, lunch float64
	const n = 60
	for s := 0; s < n; s++ {
		tr := NewTrace(OfficeWorker, int64(s))
		work += tr.At(at(monday, 11, 0)).CPU
		lunch += tr.At(at(monday, 12, 30)).CPU
	}
	if lunch >= work/2 {
		t.Fatalf("lunch CPU %v not clearly below work CPU %v", lunch/n, work/n)
	}
}

func TestNightOwlWrapsMidnight(t *testing.T) {
	busyFrac := func(day time.Time, hour int) float64 {
		busy := 0
		const n = 40
		for s := 0; s < n; s++ {
			tr := NewTrace(NightOwl, int64(s))
			if tr.BusyAt(at(day, hour, 7)) {
				busy++
			}
		}
		return float64(busy) / n
	}
	if f := busyFrac(monday, 23); f < 0.9 {
		t.Fatalf("night owl 23:00 busy fraction = %v", f)
	}
	if f := busyFrac(monday, 1); f < 0.9 {
		t.Fatalf("night owl 01:00 busy fraction = %v (window must wrap)", f)
	}
	if f := busyFrac(monday, 12); f > 0.3 {
		t.Fatalf("night owl 12:00 busy fraction = %v", f)
	}
}

func TestAlwaysBusyAndMostlyIdle(t *testing.T) {
	busyCount := func(p Profile) int {
		tr := NewTrace(p, 9)
		busy := 0
		for i := 0; i < 7*24; i++ {
			if tr.BusyAt(monday.Add(time.Duration(i) * time.Hour)) {
				busy++
			}
		}
		return busy
	}
	if c := busyCount(AlwaysBusy); c < 7*24*9/10 {
		t.Fatalf("AlwaysBusy busy %d/168 hours", c)
	}
	if c := busyCount(MostlyIdle); c > 20 {
		t.Fatalf("MostlyIdle busy %d/168 hours", c)
	}
}

func TestActivityBounds(t *testing.T) {
	f := func(seed int64, slotOffset uint16) bool {
		for _, p := range Profiles() {
			tr := NewTrace(p, seed)
			a := tr.At(monday.Add(time.Duration(slotOffset) * Interval))
			if a.CPU < 0 || a.CPU > 1 || a.RAM < 0 || a.RAM > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIdleUntil(t *testing.T) {
	tr := NewTrace(AlwaysBusy, 1)
	if d := tr.IdleUntil(at(monday, 10, 0), 8*time.Hour); d != 0 {
		t.Fatalf("AlwaysBusy IdleUntil = %v, want 0", d)
	}
	idle := NewTrace(MostlyIdle, 1)
	// Find an idle instant, then the span must be positive and a multiple
	// of the scan step until horizon or a burst.
	start := at(monday, 4, 0)
	if idle.BusyAt(start) {
		t.Skip("seed hit a burst at probe instant")
	}
	d := idle.IdleUntil(start, 4*time.Hour)
	if d <= 0 || d > 4*time.Hour {
		t.Fatalf("IdleUntil = %v", d)
	}
	// Office worker at 08:30 weekday: busy by 09:00+noise, so bounded.
	office := NewTrace(OfficeWorker, 3)
	if office.BusyAt(at(monday, 8, 30)) {
		t.Skip("seed hit a burst at probe instant")
	}
	d = office.IdleUntil(at(monday, 8, 30), 12*time.Hour)
	if d > time.Hour {
		t.Fatalf("office IdleUntil from 08:30 = %v, want <= 1h", d)
	}
}

func TestDayVectorShape(t *testing.T) {
	tr := NewTrace(OfficeWorker, 5)
	v := tr.DayVector(at(monday, 15, 33)) // any instant within the day
	if len(v) != SlotsPerDay {
		t.Fatalf("len = %d, want %d", len(v), SlotsPerDay)
	}
	// Working hours slots should exceed night slots on average.
	avg := func(fromHour, toHour int) float64 {
		sum, n := 0.0, 0
		for i := fromHour * 12; i < toHour*12; i++ {
			sum += v[i]
			n++
		}
		return sum / float64(n)
	}
	if avg(9, 12) < 3*avg(2, 5) {
		t.Fatalf("day vector lacks office shape: work=%v night=%v", avg(9, 12), avg(2, 5))
	}
}

func TestProfileByName(t *testing.T) {
	for _, p := range Profiles() {
		got, err := ProfileByName(p.Name)
		if err != nil {
			t.Fatal(err)
		}
		if got.Name != p.Name {
			t.Fatalf("ProfileByName(%q) = %q", p.Name, got.Name)
		}
	}
	if _, err := ProfileByName("ghost"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestBurstsHappenOffHours(t *testing.T) {
	// Over many seeds and off-hours slots, at least some bursts must occur
	// (the "idle node becomes busy without notice" behaviour).
	bursts := 0
	for s := 0; s < 50; s++ {
		tr := NewTrace(OfficeWorker, int64(s))
		for i := 0; i < SlotsPerDay/3; i++ { // 00:00-08:00
			if tr.BusyAt(monday.Add(time.Duration(i) * Interval)) {
				bursts++
			}
		}
	}
	if bursts == 0 {
		t.Fatal("no surprise bursts in 50 seeds x 8 hours")
	}
}

func TestWindowContains(t *testing.T) {
	w := Window{StartHour: 9, EndHour: 17}
	if !w.contains(9) || w.contains(17) || w.contains(3) {
		t.Fatal("plain window containment wrong")
	}
	wrap := Window{StartHour: 22, EndHour: 2}
	if !wrap.contains(23) || !wrap.contains(1) || wrap.contains(12) {
		t.Fatal("wrapping window containment wrong")
	}
}

func TestBusyThresholdConsistency(t *testing.T) {
	a := Activity{CPU: BusyThreshold}
	if !a.Busy() {
		t.Fatal("threshold activity not busy")
	}
	b := Activity{CPU: BusyThreshold - 0.01}
	if b.Busy() {
		t.Fatal("below-threshold activity busy")
	}
}

func TestHolidays(t *testing.T) {
	p := usageProfileWithHolidays()
	tr := NewTrace(p, 3)
	// Find a weekday that is a holiday within the next 60 days and check
	// the owner is absent during office hours.
	foundHoliday, foundWorkday := false, false
	for d := 0; d < 60; d++ {
		day := monday.AddDate(0, 0, d)
		if wd := day.Weekday(); wd == time.Saturday || wd == time.Sunday {
			continue
		}
		at := day.Add(11 * time.Hour)
		if tr.IsHoliday(at) {
			foundHoliday = true
			if tr.At(at).CPU > BusyThreshold+0.3 {
				t.Fatalf("holiday %v has office-level activity %v", day, tr.At(at))
			}
		} else {
			foundWorkday = true
		}
	}
	if !foundHoliday || !foundWorkday {
		t.Fatalf("holiday coverage: holiday=%v workday=%v", foundHoliday, foundWorkday)
	}
	// Profiles without HolidayEvery never report holidays.
	plain := NewTrace(OfficeWorker, 3)
	for d := 0; d < 30; d++ {
		if plain.IsHoliday(monday.AddDate(0, 0, d)) {
			t.Fatal("holiday on a profile without HolidayEvery")
		}
	}
}

func usageProfileWithHolidays() Profile { return OfficeWithHolidays }
