package usage

import (
	"testing"
	"time"
)

func TestIdleAndBusyWindowsPartitionTheHorizon(t *testing.T) {
	tr := NewTrace(OfficeWorker, 3)
	from := time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC) // a Monday
	horizon := 48 * time.Hour
	idle := tr.IdleWindows(from, horizon)
	busy := tr.BusyWindows(from, horizon)
	if len(idle) == 0 || len(busy) == 0 {
		t.Fatalf("idle=%d busy=%d windows, want both non-empty", len(idle), len(busy))
	}
	var covered time.Duration
	for _, s := range append(append([]Span(nil), idle...), busy...) {
		if !s.Start.Before(s.End) {
			t.Fatalf("empty span [%v, %v]", s.Start, s.End)
		}
		covered += s.Duration()
	}
	if covered != horizon {
		t.Fatalf("idle+busy cover %v, want %v", covered, horizon)
	}
}

func TestBusyWindowsMatchOfficeSchedule(t *testing.T) {
	tr := NewTrace(OfficeWorker, 3)
	monday := time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC)
	busy := tr.BusyWindows(monday, 24*time.Hour)
	// The office worker works 9-12 and 13-18 on weekdays: exactly two busy
	// spans, at those hours (the scheduled base signal has no noise).
	if len(busy) != 2 {
		t.Fatalf("busy windows = %d (%v), want 2", len(busy), busy)
	}
	wantStarts := []int{9, 13}
	wantEnds := []int{12, 18}
	for i, s := range busy {
		if s.Start.Hour() != wantStarts[i] || s.End.Hour() != wantEnds[i] {
			t.Fatalf("busy[%d] = [%v, %v], want %02d:00-%02d:00",
				i, s.Start, s.End, wantStarts[i], wantEnds[i])
		}
	}
}

func TestBaseBusyAtIgnoresNoiseAndBursts(t *testing.T) {
	tr := NewTrace(MostlyIdle, 42)
	monday := time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC)
	// The mostly-idle profile's scheduled signal never crosses the busy
	// threshold; only stochastic bursts do. The ground-truth view must stay
	// idle across a long probe even where At() reports bursts.
	for i := 0; i < 7*SlotsPerDay; i++ {
		at := monday.Add(time.Duration(i) * Interval)
		if tr.BaseBusyAt(at) {
			t.Fatalf("BaseBusyAt(%v) busy on a mostly-idle schedule", at)
		}
	}
}

func TestWindowsDegenerateInputs(t *testing.T) {
	tr := NewTrace(OfficeWorker, 1)
	from := time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC)
	if got := tr.IdleWindows(from, 0); got != nil {
		t.Fatalf("zero horizon = %v", got)
	}
	if got := tr.BusyWindows(from, -time.Hour); got != nil {
		t.Fatalf("negative horizon = %v", got)
	}
	// A horizon shorter than one slot still reports the slot truncated.
	idle := tr.IdleWindows(from, time.Minute)
	if len(idle) != 1 || idle[0].Duration() != time.Minute {
		t.Fatalf("sub-slot horizon = %v", idle)
	}
}
