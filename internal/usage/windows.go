package usage

import "time"

// Span is a half-open time interval [Start, End). IdleWindows and
// BusyWindows return the trace's scheduled ground truth as spans; the LUPA
// forecast tests score predicted availability windows against them, and E15
// derives seeded node up/down flap schedules from them.
type Span struct {
	Start time.Time
	End   time.Time
}

// Duration returns the span's length.
func (s Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// BaseBusyAt reports whether the owner's scheduled (noise- and burst-free)
// activity is busy at t. This is the ground truth behind the stochastic
// signal At returns: BusyAt may flicker with per-slot noise and surprise
// bursts, but BaseBusyAt is the exact profile schedule LUPA is supposed to
// recover.
func (tr *Trace) BaseBusyAt(t time.Time) bool {
	return tr.baseAt(t).CPU >= BusyThreshold
}

// IdleWindows returns the maximal scheduled-idle spans of
// [from, from+horizon), sampled at the 5-minute slot granularity. The spans
// are exact with respect to the profile schedule (holidays included, noise
// and bursts excluded).
func (tr *Trace) IdleWindows(from time.Time, horizon time.Duration) []Span {
	return tr.scanWindows(from, horizon, false)
}

// BusyWindows returns the maximal scheduled-busy spans of
// [from, from+horizon) — the complement of IdleWindows over the same range.
func (tr *Trace) BusyWindows(from time.Time, horizon time.Duration) []Span {
	return tr.scanWindows(from, horizon, true)
}

func (tr *Trace) scanWindows(from time.Time, horizon time.Duration, busy bool) []Span {
	if horizon <= 0 {
		return nil
	}
	from = from.UTC()
	end := from.Add(horizon)
	var out []Span
	var open *Span
	for t := from; t.Before(end); t = t.Add(Interval) {
		if tr.BaseBusyAt(t) == busy {
			sEnd := t.Add(Interval)
			if sEnd.After(end) {
				sEnd = end
			}
			if open == nil {
				open = &Span{Start: t, End: sEnd}
			} else {
				open.End = sEnd
			}
		} else if open != nil {
			out = append(out, *open)
			open = nil
		}
	}
	if open != nil {
		out = append(out, *open)
	}
	return out
}
