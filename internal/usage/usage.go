// Package usage generates synthetic desktop-machine usage traces: the
// owner-side workload that InteGrade harvests around.
//
// The paper's LUPA collects "node usage information for short time intervals
// (e.g., 5 minutes)" grouped into periods, expecting behavioural categories
// such as "lunch-breaks, nights, holidays, working periods". The paper used
// real workstations; this package is the documented substitution: a
// deterministic generator whose profiles produce exactly those categories,
// with known ground truth, so prediction quality is measurable.
//
// Traces are deterministic functions of (profile, seed, instant): two reads
// of the same instant agree, and no state needs to advance, which lets the
// simulator sample sparsely.
package usage

import (
	"fmt"
	"math"
	"time"
)

// Interval is the paper's sampling granularity for usage collection.
const Interval = 5 * time.Minute

// SlotsPerDay is the number of sampling intervals in a day.
const SlotsPerDay = int(24 * time.Hour / Interval)

// Activity is the owner-consumed fraction of the machine at an instant.
type Activity struct {
	CPU float64 // fraction of CPU the owner uses, in [0,1]
	RAM float64 // fraction of RAM the owner uses, in [0,1]
}

// Busy reports whether the owner is actively using the machine, under the
// conventional threshold used throughout the experiments.
func (a Activity) Busy() bool { return a.CPU >= BusyThreshold }

// BusyThreshold is the owner-CPU fraction above which a machine counts as
// in use by its owner.
const BusyThreshold = 0.10

// Window is a recurring daily activity window.
type Window struct {
	StartHour float64 // inclusive, 0..24
	EndHour   float64 // exclusive, 0..24; may be < StartHour to wrap midnight
	CPU       float64 // owner CPU level inside the window
	RAM       float64 // owner RAM level inside the window
}

func (w Window) contains(hour float64) bool {
	if w.StartHour <= w.EndHour {
		return hour >= w.StartHour && hour < w.EndHour
	}
	return hour >= w.StartHour || hour < w.EndHour // wraps midnight
}

// Profile describes a category of machine owner as weekly windows plus
// stochastic texture.
type Profile struct {
	Name string
	// Weekday and Weekend windows; outside all windows the owner is absent.
	Weekday []Window
	Weekend []Window
	// NoiseSD perturbs in-window levels (per 5-minute slot).
	NoiseSD float64
	// BurstProb is the per-slot probability that an absent owner starts a
	// surprise session (the "idle node becomes busy without further notice"
	// the paper worries about).
	BurstProb float64
	// BurstSlots is the surprise-session length in 5-minute slots.
	BurstSlots int
	// BurstCPU is the CPU level during a surprise session.
	BurstCPU float64
	// HolidayEvery makes every Nth day (counting from the Unix epoch) a
	// holiday: the owner is absent regardless of weekday — the "holidays"
	// category the paper expects usage clustering to discover. Zero
	// disables holidays.
	HolidayEvery int
}

// Built-in profiles used across experiments; they map onto the behavioural
// categories the paper expects clustering to discover.
var (
	// OfficeWorker works 9-12 and 13-18 on weekdays (lunch dip), idle
	// otherwise.
	OfficeWorker = Profile{
		Name: "office",
		Weekday: []Window{
			{StartHour: 9, EndHour: 12, CPU: 0.55, RAM: 0.5},
			{StartHour: 12, EndHour: 13, CPU: 0.08, RAM: 0.3}, // lunch
			{StartHour: 13, EndHour: 18, CPU: 0.5, RAM: 0.5},
		},
		NoiseSD:    0.08,
		BurstProb:  0.004,
		BurstSlots: 6,
		BurstCPU:   0.6,
	}
	// LabMachine is a shared student workstation: moderately loaded
	// 10:00-22:00 every day, quieter weekends.
	LabMachine = Profile{
		Name: "lab",
		Weekday: []Window{
			{StartHour: 10, EndHour: 22, CPU: 0.45, RAM: 0.45},
		},
		Weekend: []Window{
			{StartHour: 12, EndHour: 18, CPU: 0.25, RAM: 0.3},
		},
		NoiseSD:    0.15,
		BurstProb:  0.01,
		BurstSlots: 4,
		BurstCPU:   0.5,
	}
	// NightOwl is a researcher's workstation active 20:00-02:00 daily.
	NightOwl = Profile{
		Name: "nightowl",
		Weekday: []Window{
			{StartHour: 20, EndHour: 2, CPU: 0.6, RAM: 0.55},
		},
		Weekend: []Window{
			{StartHour: 20, EndHour: 2, CPU: 0.6, RAM: 0.55},
		},
		NoiseSD:    0.1,
		BurstProb:  0.003,
		BurstSlots: 5,
		BurstCPU:   0.6,
	}
	// MostlyIdle is a rarely-touched machine — the grid's best friend.
	MostlyIdle = Profile{
		Name:       "mostlyidle",
		NoiseSD:    0.02,
		BurstProb:  0.002,
		BurstSlots: 3,
		BurstCPU:   0.4,
	}
	// OfficeWithHolidays is an office workstation whose owner also takes a
	// holiday every 10th day — idle days that fall on weekdays, the
	// "holidays" the paper expects usage analysis to absorb.
	OfficeWithHolidays = Profile{
		Name: "office-holidays",
		Weekday: []Window{
			{StartHour: 9, EndHour: 12, CPU: 0.55, RAM: 0.5},
			{StartHour: 12, EndHour: 13, CPU: 0.08, RAM: 0.3},
			{StartHour: 13, EndHour: 18, CPU: 0.5, RAM: 0.5},
		},
		NoiseSD:      0.08,
		BurstProb:    0.004,
		BurstSlots:   6,
		BurstCPU:     0.6,
		HolidayEvery: 10,
	}
	// AlwaysBusy is a machine whose owner never leaves (a build server,
	// say) — the grid should learn to avoid it.
	AlwaysBusy = Profile{
		Name: "alwaysbusy",
		Weekday: []Window{
			{StartHour: 0, EndHour: 24, CPU: 0.8, RAM: 0.7},
		},
		Weekend: []Window{
			{StartHour: 0, EndHour: 24, CPU: 0.8, RAM: 0.7},
		},
		NoiseSD: 0.05,
	}
)

// Profiles lists the built-in profiles.
func Profiles() []Profile {
	return []Profile{OfficeWorker, LabMachine, NightOwl, MostlyIdle, AlwaysBusy, OfficeWithHolidays}
}

// ProfileByName returns the built-in profile with the given name.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("usage: unknown profile %q", name)
}

// Trace is a deterministic usage signal for one machine.
type Trace struct {
	profile Profile
	seed    uint64
}

// NewTrace returns the trace of a machine with the given profile and seed.
func NewTrace(profile Profile, seed int64) *Trace {
	return &Trace{profile: profile, seed: uint64(seed)}
}

// Profile returns the trace's profile.
func (tr *Trace) Profile() Profile { return tr.profile }

// At returns the owner activity at instant t.
func (tr *Trace) At(t time.Time) Activity {
	t = t.UTC()
	slot := slotIndex(t)
	base := tr.baseAt(t)
	if base.CPU > 0 {
		// In-window: add per-slot noise.
		n := tr.noise(slot) * tr.profile.NoiseSD
		return Activity{
			CPU: clamp01(base.CPU + n),
			RAM: clamp01(base.RAM + n/2),
		}
	}
	// Out of window: maybe a surprise burst covers this slot.
	if tr.inBurst(slot) {
		return Activity{CPU: clamp01(tr.profile.BurstCPU), RAM: 0.4}
	}
	// Background OS noise, always below the busy threshold.
	return Activity{CPU: 0.02 + 0.05*tr.unit(slot, 0x0F), RAM: 0.15}
}

// IsHoliday reports whether t falls on one of the profile's holidays.
func (tr *Trace) IsHoliday(t time.Time) bool {
	if tr.profile.HolidayEvery <= 0 {
		return false
	}
	day := t.UTC().Unix() / int64(24*time.Hour/time.Second)
	return day%int64(tr.profile.HolidayEvery) == 0
}

// baseAt returns the scheduled (noise-free) activity level at t.
func (tr *Trace) baseAt(t time.Time) Activity {
	if tr.IsHoliday(t) {
		return Activity{}
	}
	hour := float64(t.Hour()) + float64(t.Minute())/60
	windows := tr.profile.Weekday
	if wd := t.Weekday(); wd == time.Saturday || wd == time.Sunday {
		windows = tr.profile.Weekend
	}
	for _, w := range windows {
		if w.contains(hour) {
			return Activity{CPU: w.CPU, RAM: w.RAM}
		}
	}
	return Activity{}
}

// BusyAt reports whether the owner is busy at t.
func (tr *Trace) BusyAt(t time.Time) bool { return tr.At(t).Busy() }

// IdleUntil returns how long the machine stays continuously idle starting at
// t, scanning slot-by-slot up to horizon. This is the experiment's ground
// truth for idle-span prediction. If the machine is busy at t it returns 0.
func (tr *Trace) IdleUntil(t time.Time, horizon time.Duration) time.Duration {
	if tr.BusyAt(t) {
		return 0
	}
	var elapsed time.Duration
	for elapsed < horizon {
		elapsed += Interval
		if tr.BusyAt(t.Add(elapsed)) {
			return elapsed
		}
	}
	return horizon
}

// DayVector samples the trace's owner-CPU for each slot of the day
// containing t (midnight to midnight, UTC). LUPA clusters these vectors.
func (tr *Trace) DayVector(t time.Time) []float64 {
	midnight := time.Date(t.Year(), t.Month(), t.Day(), 0, 0, 0, 0, time.UTC)
	v := make([]float64, SlotsPerDay)
	for i := range v {
		v[i] = tr.At(midnight.Add(time.Duration(i) * Interval)).CPU
	}
	return v
}

// inBurst reports whether slot falls inside a surprise session. A session
// starts at slot s when hash(s) < BurstProb; the session covers the next
// BurstSlots slots.
func (tr *Trace) inBurst(slot int64) bool {
	if tr.profile.BurstProb <= 0 || tr.profile.BurstSlots <= 0 {
		return false
	}
	for back := int64(0); back < int64(tr.profile.BurstSlots); back++ {
		if tr.unit(slot-back, 0xB0) < tr.profile.BurstProb {
			return true
		}
	}
	return false
}

// unit returns a deterministic uniform value in [0,1) for (slot, salt).
func (tr *Trace) unit(slot int64, salt uint64) float64 {
	h := splitmix64(tr.seed ^ uint64(slot)*0x9E3779B97F4A7C15 ^ salt<<56)
	return float64(h>>11) / float64(1<<53)
}

// noise returns a deterministic standard-normal-ish value for slot, via a
// Box-Muller transform of two hashed uniforms.
func (tr *Trace) noise(slot int64) float64 {
	u1 := tr.unit(slot, 0x01)
	u2 := tr.unit(slot, 0x02)
	if u1 < 1e-12 {
		u1 = 1e-12
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

func slotIndex(t time.Time) int64 {
	return t.Unix() / int64(Interval/time.Second)
}

func clamp01(v float64) float64 {
	return math.Min(1, math.Max(0, v))
}

// splitmix64 is the SplitMix64 mixing function — a fast, well-distributed
// 64-bit hash used to derive per-slot randomness.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
