package core

import (
	"errors"
	"fmt"

	"integrade/internal/asct"
	"integrade/internal/bsp"
	"integrade/internal/checkpoint"
	"integrade/internal/protocol"
	"integrade/internal/resource"
)

// ErrNoCapacity indicates RunBSP could not obtain a gang placement.
var ErrNoCapacity = errors.New("core: no capacity for the BSP gang")

// BSPJob describes a RunBSP invocation.
type BSPJob struct {
	// Name identifies the job (checkpoints are stored under it, so a
	// restarted grid process can resume it by name).
	Name string
	// Procs is the BSP process count.
	Procs int
	// Alloc is the per-process resource allocation to hold on the grid.
	Alloc resource.Vector
	// CheckpointEvery snapshots every n supersteps (default 1).
	CheckpointEvery int
	// MaxRestarts bounds recovery attempts after program failures
	// (default 0: no retry).
	MaxRestarts int
}

// RunBSP bridges the grid's placement machinery and the real BSP runtime:
//
//  1. it acquires a gang placement for the job's processes through the
//     normal reservation/execution protocols (so the capacity is genuinely
//     held against other grid applications);
//  2. it executes program on the in-process BSP runtime, checkpointing
//     into the grid's checkpoint store;
//  3. on a program failure it resumes from the latest snapshot, up to
//     MaxRestarts times;
//  4. it releases the placement when the run ends.
//
// The computation itself runs on this process's goroutines (wall clock),
// while the placement lives in grid time — the same split the paper's
// prototype had, where the middleware managed resources and the application
// binary did the computing.
func (g *Grid) RunBSP(job BSPJob, program bsp.Program) error {
	if job.Name == "" {
		return errors.New("core: BSP job without a name")
	}
	if job.Procs <= 0 {
		return fmt.Errorf("core: BSP job with %d processes", job.Procs)
	}
	every := job.CheckpointEvery
	if every <= 0 {
		every = 1
	}

	// Phase 1: hold the gang. The placeholder tasks carry effectively
	// unbounded work; they exist to keep the allocation committed while
	// the program runs and are cancelled afterwards. RestartEvicted lets
	// the failure detector re-place the gang's placeholders on surviving
	// nodes when a member's machine dies mid-run.
	acquire := func() (*Handle, error) {
		handle, err := g.Submit(asct.NewApplication(job.Name).
			BSP(job.Procs, 1e18).
			Allocate(job.Alloc).
			RestartEvicted())
		if err != nil {
			return nil, fmt.Errorf("core: acquire gang: %w", err)
		}
		st, err := handle.Status()
		if err != nil {
			_ = handle.Cancel()
			return nil, err
		}
		for _, task := range st.Tasks {
			if task.State != protocol.TaskRunning {
				_ = handle.Cancel()
				return nil, fmt.Errorf("%w: %d processes requested, placement incomplete", ErrNoCapacity, job.Procs)
			}
		}
		return handle, nil
	}
	handle, err := acquire()
	if err != nil {
		return err
	}
	defer func() {
		if handle != nil {
			_ = handle.Cancel()
		}
	}()

	// Phase 2: run with rollback recovery. The active runtime is registered
	// under the placement's app ID so the GRM's failure detector can abort
	// the gang (waking processes parked at barriers) when a member node is
	// declared dead; the next attempt restores from the latest snapshot.
	//
	// A failover can also invalidate the placement itself: when the current
	// handle's app is unknown to the cluster's (new) manager, the gang is
	// re-acquired through the normal submission path before resuming —
	// checkpoints live in the grid store, not in the manager, so the restore
	// point survives the manager.
	register := func(appID string, rt *bsp.Runtime) {
		g.bspMu.Lock()
		if rt == nil {
			delete(g.bspRuns, appID)
		} else {
			g.bspRuns[appID] = rt
		}
		g.bspMu.Unlock()
	}
	var lastErr error
	for attempt := 0; attempt <= job.MaxRestarts; attempt++ {
		if handle == nil {
			h, err := acquire()
			if err != nil {
				lastErr = err
				continue
			}
			handle = h
		}
		appID := handle.ID()
		lastErr = checkpoint.ResumeRuntime(g.store, job.Name, job.Procs, every, program,
			func(rt *bsp.Runtime) { register(appID, rt) })
		if lastErr == nil {
			return nil
		}
		// The placement is stale when its manager no longer knows the app
		// (cold rebuild) or the run was aborted because the manager was torn
		// down mid-flight; drop it so the next attempt re-acquires.
		if errors.Is(lastErr, ErrManagerLost) {
			_ = handle.Cancel()
			handle = nil
			continue
		}
		if _, err := handle.Status(); err != nil {
			_ = handle.Cancel()
			handle = nil
		}
	}
	return fmt.Errorf("core: BSP job %q failed after %d attempt(s): %w",
		job.Name, job.MaxRestarts+1, lastErr)
}
