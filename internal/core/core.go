// Package core is InteGrade's public facade: it assembles the ORB, GRM,
// LRMs, LUPA/GUPA, NCC policies, hierarchy and checkpoint store into a
// running grid, exposing the API the examples, CLI tools and benchmarks
// use.
//
// A Grid can run on the deterministic virtual clock (simulated deployments:
// tests, benchmarks, examples) or the wall clock with real TCP transports
// (the cmd/ servers use the underlying packages directly).
package core

import (
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"integrade/internal/asct"
	"integrade/internal/bsp"
	"integrade/internal/chaos"
	"integrade/internal/checkpoint"
	"integrade/internal/grm"
	"integrade/internal/gupa"
	"integrade/internal/hierarchy"
	"integrade/internal/lrm"
	"integrade/internal/naming"
	"integrade/internal/ncc"
	"integrade/internal/node"
	"integrade/internal/orb"
	"integrade/internal/protocol"
	"integrade/internal/resource"
	"integrade/internal/sim"
	"integrade/internal/usage"
)

// DefaultPlatform is the platform simulated nodes advertise.
var DefaultPlatform = resource.Platform{Arch: "amd64", OS: "linux"}

// Grid is a running InteGrade deployment.
type Grid struct {
	clock  sim.Clock
	vclock *sim.VirtualClock // nil when running on the wall clock
	orb    *orb.ORB
	rng    *sim.RNG
	log    *slog.Logger
	store  *checkpoint.Store
	// naming is the grid's name directory: every cluster manager is bound
	// under "clusters/<id>/grm", and LRMs re-resolve through it after their
	// GRM dies (the self-healing path).
	naming    *naming.Service
	namingRef orb.ObjectRef
	// mu guards clusters, order, links, stopped and chaos. CreateCluster
	// builds and registers the whole manager stack while holding it, so g.mu
	// nests outside the per-cluster locks and every subsystem lock that
	// manager construction touches: servant registration (orb.OpMux,
	// orb.Adapter, orb.Loopback), GRM startup, the name directory and the
	// hierarchy node. Stop and teardown deliberately run outside g.mu.
	//lint:lockorder core.Grid.mu<core.Cluster.mgmtMu
	//lint:lockorder core.Grid.mu<core.Cluster.mu
	//lint:lockorder core.Grid.mu<grm.GRM.mu
	//lint:lockorder core.Grid.mu<hierarchy.Node.mu
	//lint:lockorder core.Grid.mu<naming.Service.mu
	//lint:lockorder core.Grid.mu<orb.Adapter.mu
	//lint:lockorder core.Grid.mu<orb.Loopback.mu
	//lint:lockorder core.Grid.mu<orb.OpMux.mu
	mu       sync.Mutex
	clusters map[string]*Cluster
	order    []string
	// links records the hierarchy topology (child cluster ID -> parent
	// cluster ID) so a promoted or rebuilt manager can be re-parented.
	links   map[string]string
	stopped bool
	chaos   *chaos.Engine

	// bspMu guards bspRuns: the in-flight BSP runtime per application,
	// registered by RunBSP so the failure detector can abort a gang whose
	// node died.
	bspMu   sync.Mutex
	bspRuns map[string]*bsp.Runtime
}

// Option configures a Grid.
type Option func(*Grid)

// WithClock installs a clock; pass a *sim.VirtualClock for simulation
// (default) or sim.RealClock{} for wall-clock runs.
func WithClock(c sim.Clock) Option {
	return func(g *Grid) {
		g.clock = c
		g.vclock, _ = c.(*sim.VirtualClock)
	}
}

// WithSeed seeds all grid randomness (default 1).
func WithSeed(seed int64) Option {
	return func(g *Grid) { g.rng = sim.NewRNG(seed) }
}

// WithLogger installs a logger (default: discard).
func WithLogger(log *slog.Logger) Option {
	return func(g *Grid) { g.log = log }
}

// NewGrid returns an empty grid on a fresh virtual clock unless overridden.
func NewGrid(opts ...Option) *Grid {
	vc := sim.NewVirtualClock()
	g := &Grid{
		clock:    vc,
		vclock:   vc,
		orb:      orb.New(),
		rng:      sim.NewRNG(1),
		log:      slog.New(slog.DiscardHandler),
		naming:   naming.NewService(),
		clusters: make(map[string]*Cluster),
		links:    make(map[string]string),
		bspRuns:  make(map[string]*bsp.Runtime),
	}
	for _, opt := range opts {
		opt(g)
	}
	g.store = checkpoint.NewStore(g.clock.Now)
	adapter := orb.NewAdapter()
	// A fresh ORB cannot already hold these names; errors are impossible.
	_ = adapter.Register(naming.ObjectKey, naming.Servant(g.naming))
	ep, _ := g.orb.BindLoopback("naming", adapter)
	g.namingRef = orb.ObjectRef{Endpoint: ep, Key: naming.ObjectKey}
	return g
}

// Naming returns the grid's name directory.
func (g *Grid) Naming() *naming.Service { return g.naming }

// Clock returns the grid clock.
func (g *Grid) Clock() sim.Clock { return g.clock }

// ORB returns the grid's object request broker.
func (g *Grid) ORB() *orb.ORB { return g.orb }

// Checkpoints returns the grid-wide checkpoint store used by BSP helpers.
func (g *Grid) Checkpoints() *checkpoint.Store { return g.store }

// Advance moves simulated time forward by d, executing all scheduled
// protocol activity. It is an error on a wall-clock grid.
func (g *Grid) Advance(d time.Duration) error {
	if g.vclock == nil {
		return errors.New("core: Advance requires a virtual clock")
	}
	g.vclock.Advance(d)
	return nil
}

// Now returns the current grid time.
func (g *Grid) Now() time.Time { return g.clock.Now() }

// Stop shuts down every cluster's background loops. The teardown itself
// runs outside g.mu: cluster stop and ORB close both wait on other locks
// (and the ORB close on in-flight work), so holding the grid lock across
// them would pin every accessor for the whole teardown. A second concurrent
// Stop returns as soon as the first has claimed the teardown.
func (g *Grid) Stop() {
	g.mu.Lock()
	if g.stopped {
		g.mu.Unlock()
		return
	}
	g.stopped = true
	clusters := make([]*Cluster, 0, len(g.clusters))
	for _, id := range g.order {
		clusters = append(clusters, g.clusters[id])
	}
	g.mu.Unlock()
	for _, c := range clusters {
		c.stop()
	}
	g.orb.Close()
}

// Clusters returns the cluster IDs in creation order.
func (g *Grid) Clusters() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]string(nil), g.order...)
}

// Cluster returns a cluster by ID.
func (g *Grid) Cluster(id string) (*Cluster, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	c, ok := g.clusters[id]
	return c, ok
}

// root returns the first-created cluster.
func (g *Grid) root() (*Cluster, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.order) == 0 {
		return nil, errors.New("core: grid has no clusters")
	}
	return g.clusters[g.order[0]], nil
}

// Submit submits an application to the grid: it enters at the root
// cluster's hierarchy node and is routed to a capable cluster.
func (g *Grid) Submit(b *asct.Builder) (*Handle, error) {
	spec, err := b.Spec()
	if err != nil {
		return nil, err
	}
	root, err := g.root()
	if err != nil {
		return nil, err
	}
	res, err := root.Hierarchy().Submit(spec)
	if err != nil {
		return nil, err
	}
	target, ok := g.Cluster(res.ClusterID)
	if !ok {
		return nil, fmt.Errorf("core: routed to unknown cluster %q", res.ClusterID)
	}
	return &Handle{grid: g, cluster: target, appID: res.AppID, hops: res.Hops}, nil
}

// SubmitTo submits directly to one cluster, bypassing hierarchy routing.
func (g *Grid) SubmitTo(clusterID string, b *asct.Builder) (*Handle, error) {
	c, ok := g.Cluster(clusterID)
	if !ok {
		return nil, fmt.Errorf("core: unknown cluster %q", clusterID)
	}
	spec, err := b.Spec()
	if err != nil {
		return nil, err
	}
	appID, err := c.GRM().Submit(spec)
	if err != nil {
		return nil, err
	}
	return &Handle{grid: g, cluster: c, appID: appID}, nil
}

// Handle tracks a submitted application.
type Handle struct {
	grid    *Grid
	cluster *Cluster
	appID   string
	hops    int
}

// ID returns the application ID.
func (h *Handle) ID() string { return h.appID }

// ClusterID returns the cluster the application landed on.
func (h *Handle) ClusterID() string { return h.cluster.id }

// Hops returns the hierarchy hops the submission travelled.
func (h *Handle) Hops() int { return h.hops }

// Status fetches the application status from the cluster's active manager.
func (h *Handle) Status() (protocol.AppStatus, error) {
	return h.cluster.GRM().AppStatus(h.appID)
}

// Cancel aborts the application.
func (h *Handle) Cancel() error {
	return h.cluster.GRM().CancelApp(h.appID)
}

// WaitSimulated advances virtual time in poll-sized steps until the
// application completes or maxSim elapses, returning the final status.
func (h *Handle) WaitSimulated(maxSim, poll time.Duration) (protocol.AppStatus, error) {
	if h.grid.vclock == nil {
		return protocol.AppStatus{}, errors.New("core: WaitSimulated requires a virtual clock")
	}
	if poll <= 0 {
		poll = time.Minute
	}
	deadline := h.grid.Now().Add(maxSim)
	for {
		st, err := h.Status()
		if err != nil {
			return protocol.AppStatus{}, err
		}
		if st.Done() {
			return st, nil
		}
		if !h.grid.Now().Before(deadline) {
			return st, fmt.Errorf("core: app %s incomplete after %v simulated", h.appID, maxSim)
		}
		h.grid.vclock.Advance(poll)
	}
}

// Cluster is one InteGrade cluster inside a Grid.
type Cluster struct {
	id   string
	grid *Grid

	updatePeriod time.Duration
	grmOpts      []grm.Option // retained for standby / cold-rebuild incarnations
	lrmOpts      []lrm.Option // applied to every LRM the cluster builds

	// mgmtMu guards the swappable manager identity: the active manager
	// incarnation, the warm standby (nil when none), the consensus replica
	// set (empty when none) and the incarnation counter. Held only for field
	// swaps, never across RPCs.
	mgmtMu   sync.Mutex
	mgr      *manager
	standby  *manager
	replicas []*manager
	deposed  []*manager // live-but-demoted primaries awaiting teardown
	gen      int

	// mu guards nodes, lrms and seq. stop() halts the LRMs and FailNode
	// crashes a node (which releases its ledger reservations) under it, so
	// c.mu nests outside the LRM, node and ledger locks.
	//lint:lockorder core.Cluster.mu<lrm.LRM.mu
	//lint:lockorder core.Cluster.mu<node.Node.mu
	mu    sync.Mutex
	nodes []*node.Node
	lrms  []*lrm.LRM
	seq   int
}

// ClusterOption configures a cluster.
type ClusterOption func(*clusterConfig)

type clusterConfig struct {
	grmOpts      []grm.Option
	lrmOpts      []lrm.Option
	updatePeriod time.Duration
}

// WithGRMOptions forwards raw GRM options (tuning knobs the named cluster
// options do not cover).
func WithGRMOptions(opts ...grm.Option) ClusterOption {
	return func(c *clusterConfig) { c.grmOpts = append(c.grmOpts, opts...) }
}

// WithLRMOptions forwards raw LRM options to every node the cluster adds —
// e.g. lrm.WithDepartureDrain to enable graceful-departure drains on an
// intermittent fleet.
func WithLRMOptions(opts ...lrm.Option) ClusterOption {
	return func(c *clusterConfig) { c.lrmOpts = append(c.lrmOpts, opts...) }
}

// WithPolicy sets the cluster scheduling policy (default usage-aware).
func WithPolicy(p grm.Policy) ClusterOption {
	return func(c *clusterConfig) { c.grmOpts = append(c.grmOpts, grm.WithPolicy(p)) }
}

// WithBackbone sets the cluster's inter-LAN backbone bandwidth.
func WithBackbone(mbps float64) ClusterOption {
	return func(c *clusterConfig) { c.grmOpts = append(c.grmOpts, grm.WithBackbone(mbps)) }
}

// WithSchedulePeriod sets the GRM pending-queue scheduling period.
func WithSchedulePeriod(d time.Duration) ClusterOption {
	return func(c *clusterConfig) { c.grmOpts = append(c.grmOpts, grm.WithSchedulePeriod(d)) }
}

// WithUpdatePeriod sets the cluster's LRM information-update cadence
// (default 30s).
func WithUpdatePeriod(d time.Duration) ClusterOption {
	return func(c *clusterConfig) { c.updatePeriod = d }
}

// AddCluster creates a cluster and starts its manager components.
func (g *Grid) AddCluster(id string, opts ...ClusterOption) (*Cluster, error) {
	cfg := clusterConfig{updatePeriod: lrm.DefaultUpdatePeriod}
	for _, opt := range opts {
		opt(&cfg)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, exists := g.clusters[id]; exists {
		return nil, fmt.Errorf("core: cluster %q already exists", id)
	}

	c := &Cluster{id: id, grid: g, updatePeriod: cfg.updatePeriod, grmOpts: cfg.grmOpts, lrmOpts: cfg.lrmOpts}
	m, err := c.buildManager(0)
	if err != nil {
		return nil, err
	}
	c.mgr = m
	m.grm.Start()
	_ = g.naming.Rebind(grmName(id), m.grmRef)

	g.clusters[id] = c
	g.order = append(g.order, id)
	return c, nil
}

// LinkChild places child under parent in the inter-cluster hierarchy. The
// link is recorded grid-side too, so a failed-over manager can be re-parented
// into the same topology.
func (g *Grid) LinkChild(parentID, childID string) error {
	parent, ok := g.Cluster(parentID)
	if !ok {
		return fmt.Errorf("core: unknown cluster %q", parentID)
	}
	child, ok := g.Cluster(childID)
	if !ok {
		return fmt.Errorf("core: unknown cluster %q", childID)
	}
	pm, cm := parent.manager(), child.manager()
	pm.hnode.AddChild(childID, cm.href)
	cm.hnode.SetParent(pm.href)
	g.mu.Lock()
	g.links[childID] = parentID
	g.mu.Unlock()
	return nil
}

// ID returns the cluster ID.
func (c *Cluster) ID() string { return c.id }

// manager returns the active manager incarnation.
func (c *Cluster) manager() *manager {
	c.mgmtMu.Lock()
	defer c.mgmtMu.Unlock()
	return c.mgr
}

// GRM exposes the cluster's active resource manager (stats, direct
// submission). After a failover this is the promoted or rebuilt incarnation.
func (c *Cluster) GRM() *grm.GRM { return c.manager().grm }

// GUPA exposes the cluster's usage-pattern aggregator.
func (c *Cluster) GUPA() *gupa.Service { return c.manager().gupaSvc }

// Hierarchy exposes the cluster's hierarchy node.
func (c *Cluster) Hierarchy() *hierarchy.Node { return c.manager().hnode }

// Tool returns an ASCT connected to this cluster's GRM.
func (c *Cluster) Tool() *asct.Tool {
	return asct.New(c.grid.orb, c.manager().grmRef, c.grid.clock)
}

func (c *Cluster) stop() {
	c.mgmtMu.Lock()
	members := append([]*manager{c.mgr}, c.replicas...)
	members = append(members, c.deposed...)
	if c.standby != nil {
		members = append(members, c.standby)
	}
	c.mgmtMu.Unlock()
	seen := make(map[*manager]bool, len(members))
	for _, m := range members {
		if m == nil || seen[m] {
			continue
		}
		seen[m] = true
		if m.elect != nil {
			m.elect.Stop()
		}
		m.grm.Stop()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, l := range c.lrms {
		l.Stop()
	}
}

// NodeConfig describes a batch of nodes to add to a cluster.
type NodeConfig struct {
	Count int
	// MIPS is the nominal CPU speed; Jitter adds a uniform ±Jitter spread
	// for heterogeneous clusters.
	MIPS    float64
	Jitter  float64
	RAMMB   float64
	DiskMB  float64
	NetMbps float64
	LAN     string
	// Dedicated nodes have no owner and no LUPA.
	Dedicated bool
	// Usage selects the owner behaviour of desktop nodes.
	Usage *usage.Profile
	// Policy overrides the NCC policy (defaults: Generous for dedicated,
	// ncc.Default for desktops).
	Policy *ncc.Policy
}

// DesktopNodes returns a config for owner workstations with the given
// usage profile.
func DesktopNodes(count int, profile usage.Profile) NodeConfig {
	p := profile
	return NodeConfig{
		Count:   count,
		MIPS:    1000,
		Jitter:  200,
		RAMMB:   1024,
		DiskMB:  20480,
		NetMbps: 100,
		LAN:     "lan0",
		Usage:   &p,
	}
}

// DedicatedNodes returns a config for grid-reserved machines.
func DedicatedNodes(count int, mips float64) NodeConfig {
	return NodeConfig{
		Count:     count,
		MIPS:      mips,
		RAMMB:     2048,
		DiskMB:    40960,
		NetMbps:   100,
		LAN:       "lan0",
		Dedicated: true,
	}
}

// AddNodes creates the nodes, their LRMs, and primes the Information
// Update Protocol. It returns the created node IDs.
func (c *Cluster) AddNodes(cfg NodeConfig) ([]string, error) {
	if cfg.Count <= 0 {
		return nil, fmt.Errorf("core: node count %d", cfg.Count)
	}
	g := c.grid
	rng := g.rng.Fork("nodes-" + c.id)
	var ids []string
	for i := 0; i < cfg.Count; i++ {
		c.mu.Lock()
		c.seq++
		id := fmt.Sprintf("%s/n%d", c.id, c.seq)
		c.mu.Unlock()

		mips := cfg.MIPS
		if cfg.Jitter > 0 {
			mips += (rng.Float64()*2 - 1) * cfg.Jitter
		}
		spec := resource.MachineSpec{
			Platform:  DefaultPlatform,
			Capacity:  resource.Vector{MIPS: mips, RAMMB: cfg.RAMMB, DiskMB: cfg.DiskMB, NetMbps: cfg.NetMbps},
			LANID:     cfg.LAN,
			Dedicated: cfg.Dedicated,
		}
		if spec.LANID == "" {
			spec.LANID = "lan0"
		}
		var trace *usage.Trace
		if !cfg.Dedicated && cfg.Usage != nil {
			trace = usage.NewTrace(*cfg.Usage, rng.Int63())
		}
		pol := ncc.Default()
		if cfg.Dedicated {
			pol = ncc.Generous()
		}
		if cfg.Policy != nil {
			pol = *cfg.Policy
		}
		n, err := node.New(id, spec, trace, pol, g.clock.Now())
		if err != nil {
			return nil, err
		}

		adapter := orb.NewAdapter()
		ep, err := g.orb.BindLoopback(id, adapter)
		if err != nil {
			return nil, err
		}
		selfRef := orb.ObjectRef{Endpoint: ep, Key: protocol.LRMKey}
		// The LRM re-resolves its GRM through Naming (over the ORB, so the
		// lookup is subject to the same faults as any call) after repeated
		// update failures — the cluster self-heals around a dead manager.
		// Successive attempts rotate through the directory answer plus the
		// consensus replica set, so a node finds the new leader even while
		// Naming still points at a dead or deposed one.
		nclient := naming.NewClient(g.orb, g.namingRef)
		name := grmName(c.id)
		mgr := c.manager()
		var resolveMu sync.Mutex
		attempt := 0
		lrmOpts := []lrm.Option{
			lrm.WithUpdatePeriod(c.updatePeriod),
			lrm.WithGUPA(gupa.NewClient(g.orb, mgr.gupaRef)),
			lrm.WithLogger(g.log),
			lrm.WithGRMResolver(func() (orb.ObjectRef, error) {
				cands := make([]orb.ObjectRef, 0, 4)
				named, err := nclient.Resolve(name)
				if err == nil {
					cands = append(cands, named)
				}
				cands = append(cands, c.replicaRefs()...)
				if len(cands) == 0 {
					return orb.ObjectRef{}, err
				}
				resolveMu.Lock()
				k := attempt % len(cands)
				attempt++
				resolveMu.Unlock()
				return cands[k], nil
			}),
		}
		lrmOpts = append(lrmOpts, c.lrmOpts...)
		l := lrm.New(n, g.clock, g.orb, selfRef, mgr.grmRef, lrmOpts...)
		if err := adapter.Register(protocol.LRMKey, l.Servant()); err != nil {
			return nil, err
		}
		l.Start()
		l.SendUpdate()

		c.mu.Lock()
		c.nodes = append(c.nodes, n)
		c.lrms = append(c.lrms, l)
		c.mu.Unlock()
		if engine := g.Chaos(); engine != nil {
			c.registerChaosNode(engine, id)
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// Nodes returns the cluster's nodes.
func (c *Cluster) Nodes() []*node.Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*node.Node(nil), c.nodes...)
}

// LRMs returns the cluster's local resource managers.
func (c *Cluster) LRMs() []*lrm.LRM {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*lrm.LRM(nil), c.lrms...)
}

// FailNode crashes the named node for the outage duration. Evicted-task
// notifications flow to the GRM on the node's next LRM sync.
func (c *Cluster) FailNode(nodeID string, outage time.Duration) error {
	c.mu.Lock()
	var mgr *lrm.LRM
	var evicted []*node.Task
	found := false
	for i, n := range c.nodes {
		if n.ID() == nodeID {
			evicted = n.Fail(c.grid.clock.Now(), outage)
			mgr = c.lrms[i]
			found = true
			break
		}
	}
	c.mu.Unlock()
	if !found {
		return fmt.Errorf("core: unknown node %q", nodeID)
	}
	// Fail drains the evicted tasks itself, so the LRM's periodic sync will
	// not see them; report them to the GRM directly. The notification is a
	// remote invocation, so it must run outside c.mu.
	for _, t := range evicted {
		mgr.NotifyEvicted(t)
	}
	return nil
}

// FailRandomNodes crashes k distinct running nodes for the outage duration.
func (c *Cluster) FailRandomNodes(k int, outage time.Duration) []string {
	nodes := c.Nodes()
	rng := c.grid.rng.Fork("fail-" + c.id)
	rng.Shuffle(len(nodes), func(i, j int) { nodes[i], nodes[j] = nodes[j], nodes[i] })
	var failed []string
	for _, n := range nodes {
		if len(failed) == k {
			break
		}
		if n.IsDown(c.grid.Now()) {
			continue
		}
		if err := c.FailNode(n.ID(), outage); err == nil {
			failed = append(failed, n.ID())
		}
	}
	sort.Strings(failed)
	return failed
}

// DeliveredWork sums delivered grid work (MI) across the cluster's nodes.
func (c *Cluster) DeliveredWork() float64 {
	var total float64
	for _, n := range c.Nodes() {
		total += n.DeliveredWork()
	}
	return total
}
