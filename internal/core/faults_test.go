package core

import (
	"strings"
	"testing"
	"time"

	"integrade/internal/asct"
	"integrade/internal/orb"
	"integrade/internal/resource"
	"integrade/internal/sim"
)

// TestProtocolsSurviveMessageLoss drops a fraction of all in-process
// messages and verifies that the periodic protocols converge anyway: lost
// information updates are replaced by the next period, and lost
// notifications are tolerated (completions re-detected on later syncs are
// not modelled, so we only require the system to keep functioning and the
// app to finish once messages get through).
func TestProtocolsSurviveMessageLoss(t *testing.T) {
	g := NewGrid(WithSeed(9))
	defer g.Stop()
	c, err := g.AddCluster("lossy", WithSchedulePeriod(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddNodes(DedicatedNodes(4, 1000)); err != nil {
		t.Fatal(err)
	}

	// Drop 30% of update/notify traffic (but never reservation/execution
	// RPCs, whose failures the GRM already treats as refusals and retries).
	rng := sim.NewRNG(77)
	g.ORB().Loopback().SetFaultPolicy(func(_ orb.Endpoint, _, op string) error {
		if (op == "update" || op == "notify") && rng.Bool(0.3) {
			return orb.Errorf(orb.CodeTransport, "injected loss")
		}
		return nil
	})
	defer g.ORB().Loopback().SetFaultPolicy(nil)

	if err := g.Advance(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	// Despite 30% loss the trader still knows every node (offers survive a
	// missed period within the 90s TTL at 30s cadence... with loss, at
	// least most nodes stay known).
	if got := c.GRM().KnownNodes(); got < 3 {
		t.Fatalf("KnownNodes under loss = %d, want >= 3", got)
	}

	h, err := g.SubmitTo("lossy", asct.NewApplication("tolerant").
		Parametric(4, 300_000).
		Allocate(resource.Vector{MIPS: 500, RAMMB: 64}).
		RestartEvicted())
	if err != nil {
		t.Fatal(err)
	}
	// Give generous time: lost done-notifications are re-sent on every
	// subsequent LRM sync because the node reports completions exactly
	// once... so stop the loss after a while to let stragglers drain.
	_ = g.Advance(30 * time.Minute)
	g.ORB().Loopback().SetFaultPolicy(nil)
	_ = g.Advance(30 * time.Minute)

	st, err := h.Status()
	if err != nil {
		t.Fatal(err)
	}
	done := 0
	for _, task := range st.Tasks {
		if task.State.String() == "done" {
			done++
		}
	}
	if done == 0 {
		t.Fatalf("no tasks done under message loss: %+v", st.Tasks)
	}
}

// TestLostDoneNotificationLeavesConsistentState documents the at-most-once
// notification semantics: when a done event is lost, the GRM's view lags
// (task still "running") but the node side is consistent (task finished,
// resources freed) and the cluster keeps operating.
func TestLostDoneNotificationLeavesConsistentState(t *testing.T) {
	g := NewGrid(WithSeed(10))
	defer g.Stop()
	c, err := g.AddCluster("x", WithSchedulePeriod(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddNodes(DedicatedNodes(1, 1000)); err != nil {
		t.Fatal(err)
	}
	h, err := g.SubmitTo("x", asct.NewApplication("quick").
		Sequential(60_000).
		Allocate(resource.Vector{MIPS: 1000, RAMMB: 64}))
	if err != nil {
		t.Fatal(err)
	}
	// Drop every notify from now on.
	g.ORB().Loopback().SetFaultPolicy(func(_ orb.Endpoint, _, op string) error {
		if op == "notify" {
			return orb.Errorf(orb.CodeTransport, "blackhole")
		}
		return nil
	})
	_ = g.Advance(10 * time.Minute)

	// Node side: task finished and resources are free.
	n := c.Nodes()[0]
	if got := len(n.RunningTasks()); got != 0 {
		t.Fatalf("node still running %d tasks", got)
	}
	free := n.Ledger().Free(g.Now())
	if free != n.Ledger().Capacity() {
		t.Fatalf("node resources not freed: %v", free)
	}
	// GRM side: the app is stale-running (documented at-most-once
	// semantics), not corrupted.
	st, err := h.Status()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(st.Tasks[0].State.String(), "running") {
		t.Fatalf("unexpected state %v", st.Tasks[0].State)
	}
	// New submissions still work at full capacity.
	g.ORB().Loopback().SetFaultPolicy(nil)
	h2, err := g.SubmitTo("x", asct.NewApplication("next").
		Sequential(60_000).
		Allocate(resource.Vector{MIPS: 1000, RAMMB: 64}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h2.WaitSimulated(time.Hour, time.Minute); err != nil {
		t.Fatal(err)
	}
}
