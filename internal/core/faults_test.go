package core

import (
	"encoding/binary"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"integrade/internal/asct"
	"integrade/internal/bsp"
	"integrade/internal/grm"
	"integrade/internal/orb"
	"integrade/internal/resource"
	"integrade/internal/sim"
)

// TestProtocolsSurviveMessageLoss drops a fraction of all in-process
// messages and verifies that the periodic protocols converge anyway: lost
// information updates are replaced by the next period, and lost
// notifications are tolerated (completions re-detected on later syncs are
// not modelled, so we only require the system to keep functioning and the
// app to finish once messages get through).
func TestProtocolsSurviveMessageLoss(t *testing.T) {
	g := NewGrid(WithSeed(9))
	defer g.Stop()
	c, err := g.AddCluster("lossy", WithSchedulePeriod(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddNodes(DedicatedNodes(4, 1000)); err != nil {
		t.Fatal(err)
	}

	// Drop 30% of update/notify traffic (but never reservation/execution
	// RPCs, whose failures the GRM already treats as refusals and retries).
	rng := sim.NewRNG(77)
	g.ORB().Loopback().SetFaultPolicy(func(_ orb.Endpoint, _, op string) error {
		if (op == "update" || op == "notify") && rng.Bool(0.3) {
			return orb.Errorf(orb.CodeTransport, "injected loss")
		}
		return nil
	})
	defer g.ORB().Loopback().SetFaultPolicy(nil)

	if err := g.Advance(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	// Despite 30% loss the trader still knows every node (offers survive a
	// missed period within the 90s TTL at 30s cadence... with loss, at
	// least most nodes stay known).
	if got := c.GRM().KnownNodes(); got < 3 {
		t.Fatalf("KnownNodes under loss = %d, want >= 3", got)
	}

	h, err := g.SubmitTo("lossy", asct.NewApplication("tolerant").
		Parametric(4, 300_000).
		Allocate(resource.Vector{MIPS: 500, RAMMB: 64}).
		RestartEvicted())
	if err != nil {
		t.Fatal(err)
	}
	// Give generous time: lost done-notifications are re-sent on every
	// subsequent LRM sync because the node reports completions exactly
	// once... so stop the loss after a while to let stragglers drain.
	_ = g.Advance(30 * time.Minute)
	g.ORB().Loopback().SetFaultPolicy(nil)
	_ = g.Advance(30 * time.Minute)

	st, err := h.Status()
	if err != nil {
		t.Fatal(err)
	}
	done := 0
	for _, task := range st.Tasks {
		if task.State.String() == "done" {
			done++
		}
	}
	if done == 0 {
		t.Fatalf("no tasks done under message loss: %+v", st.Tasks)
	}
}

// TestLostDoneNotificationLeavesConsistentState documents the at-most-once
// notification semantics: when a done event is lost, the GRM's view lags
// (task still "running") but the node side is consistent (task finished,
// resources freed) and the cluster keeps operating.
func TestLostDoneNotificationLeavesConsistentState(t *testing.T) {
	g := NewGrid(WithSeed(10))
	defer g.Stop()
	c, err := g.AddCluster("x", WithSchedulePeriod(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddNodes(DedicatedNodes(1, 1000)); err != nil {
		t.Fatal(err)
	}
	h, err := g.SubmitTo("x", asct.NewApplication("quick").
		Sequential(60_000).
		Allocate(resource.Vector{MIPS: 1000, RAMMB: 64}))
	if err != nil {
		t.Fatal(err)
	}
	// Drop every notify from now on.
	g.ORB().Loopback().SetFaultPolicy(func(_ orb.Endpoint, _, op string) error {
		if op == "notify" {
			return orb.Errorf(orb.CodeTransport, "blackhole")
		}
		return nil
	})
	_ = g.Advance(10 * time.Minute)

	// Node side: task finished and resources are free.
	n := c.Nodes()[0]
	if got := len(n.RunningTasks()); got != 0 {
		t.Fatalf("node still running %d tasks", got)
	}
	free := n.Ledger().Free(g.Now())
	if free != n.Ledger().Capacity() {
		t.Fatalf("node resources not freed: %v", free)
	}
	// GRM side: the app is stale-running (documented at-most-once
	// semantics), not corrupted.
	st, err := h.Status()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(st.Tasks[0].State.String(), "running") {
		t.Fatalf("unexpected state %v", st.Tasks[0].State)
	}
	// New submissions still work at full capacity.
	g.ORB().Loopback().SetFaultPolicy(nil)
	h2, err := g.SubmitTo("x", asct.NewApplication("next").
		Sequential(60_000).
		Allocate(resource.Vector{MIPS: 1000, RAMMB: 64}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h2.WaitSimulated(time.Hour, time.Minute); err != nil {
		t.Fatal(err)
	}
}

// bspAccumulate is the deterministic per-superstep state transition used by
// the crash-recovery test: the final value depends on every superstep, so a
// run that restarted from the wrong superstep (or lost state) cannot match.
func bspAccumulate(acc int64, superstep, pid int) int64 {
	return acc*31 + int64((superstep+1)*(pid+7))
}

// TestBSPGangResumesFromSnapshotAfterSilentCrash kills a gang member's node
// mid-superstep — no eviction notice, a pulled power cord — and asserts the
// recovery chain end to end: the GRM failure detector declares the node
// dead, rolls the placeholder gang back together and re-places it on the
// survivors, the eviction observer aborts the in-flight BSP runtime, and
// RunBSP restarts from the last checkpoint, producing output identical to a
// fault-free run.
func TestBSPGangResumesFromSnapshotAfterSilentCrash(t *testing.T) {
	const (
		procs      = 3
		supersteps = 8
		ckptEvery  = 2
	)

	// Fault-free reference run on its own grid.
	expected := runCrashTestBSP(t, nil)

	g := NewGrid(WithSeed(21))
	defer g.Stop()
	c, err := g.AddCluster("c1",
		WithSchedulePeriod(15*time.Second),
		WithUpdatePeriod(15*time.Second),
		WithGRMOptions(grm.WithSuspectAfter(45*time.Second)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddNodes(DedicatedNodes(4, 1000)); err != nil {
		t.Fatal(err)
	}
	engine := g.EnableChaos(7)

	var blockOnce atomic.Bool
	blockOnce.Store(true)
	reached := make(chan struct{})
	release := make(chan struct{})
	var restoredProcs atomic.Int64
	var restoredStep atomic.Int64
	results := make([]int64, procs)
	var resMu sync.Mutex
	program := func(p *bsp.Proc) error {
		var acc int64
		if st := p.Restored(); st != nil {
			acc = int64(binary.BigEndian.Uint64(st))
			restoredProcs.Add(1)
			restoredStep.Store(int64(p.Superstep()))
		}
		p.SetState(func() []byte {
			var b [8]byte
			binary.BigEndian.PutUint64(b[:], uint64(acc))
			return b[:]
		})
		for p.Superstep() < supersteps {
			acc = bspAccumulate(acc, p.Superstep(), p.PID())
			if p.PID() == 0 && p.Superstep() == 3 && blockOnce.CompareAndSwap(true, false) {
				close(reached)
				<-release
			}
			if err := p.Sync(); err != nil {
				return err
			}
		}
		resMu.Lock()
		results[p.PID()] = acc
		resMu.Unlock()
		return nil
	}

	done := make(chan error, 1)
	go func() {
		defer close(done)
		done <- g.RunBSP(BSPJob{
			Name:            "crashy",
			Procs:           procs,
			Alloc:           resource.Vector{MIPS: 800, RAMMB: 128},
			CheckpointEvery: ckptEvery,
			MaxRestarts:     3,
		}, program)
	}()

	// Wait for the gang to reach superstep 3 (checkpoint at 2 taken), with
	// process 0 parked mid-superstep.
	select {
	case <-reached:
	case <-time.After(30 * time.Second):
		t.Fatal("gang never reached superstep 3")
	}
	// Let heartbeats accumulate so the detector has an observed cadence.
	if err := g.Advance(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	// Pick a gang member's node and pull its power cord via the engine.
	appIDs := c.GRM().AppIDs()
	if len(appIDs) != 1 {
		t.Fatalf("app ids = %v", appIDs)
	}
	st, err := c.GRM().AppStatus(appIDs[0])
	if err != nil {
		t.Fatal(err)
	}
	victim := st.Tasks[0].NodeID
	if victim == "" {
		t.Fatalf("placeholder not placed: %+v", st.Tasks)
	}
	engine.ScheduleCrash(victim, time.Second, 0)
	if err := g.Advance(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	stats := c.GRM().Stats()
	if stats.NodesDeclaredDead != 1 {
		t.Fatalf("NodesDeclaredDead = %d, want 1", stats.NodesDeclaredDead)
	}
	if engine.Stats().Crashes != 1 {
		t.Fatalf("engine crashes = %+v", engine.Stats())
	}
	// The runtime was aborted by the eviction observer; release the parked
	// process so the first attempt unwinds and the retry restores.
	close(release)

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("RunBSP: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RunBSP did not finish after recovery")
	}

	// Every process restored exactly once, from the checkpoint at superstep
	// 2 (the last one taken before the crash at superstep 3).
	if got := restoredProcs.Load(); got != procs {
		t.Fatalf("restored processes = %d, want %d", got, procs)
	}
	if got := restoredStep.Load(); got != 2 {
		t.Fatalf("restored superstep = %d, want 2", got)
	}
	resMu.Lock()
	got := append([]int64(nil), results...)
	resMu.Unlock()
	for pid := range expected {
		if got[pid] != expected[pid] {
			t.Fatalf("proc %d output %d != fault-free %d", pid, got[pid], expected[pid])
		}
	}
	// The snapshot is dropped after the successful run.
	if apps := g.Checkpoints().Apps(); len(apps) != 0 {
		t.Fatalf("snapshots left after success: %v", apps)
	}
}

// runCrashTestBSP executes the reference fault-free run and returns the
// per-process outputs.
func runCrashTestBSP(t *testing.T, _ []string) []int64 {
	t.Helper()
	const (
		procs      = 3
		supersteps = 8
	)
	g := NewGrid(WithSeed(21))
	defer g.Stop()
	c, err := g.AddCluster("c1", WithSchedulePeriod(15*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddNodes(DedicatedNodes(4, 1000)); err != nil {
		t.Fatal(err)
	}
	results := make([]int64, procs)
	var resMu sync.Mutex
	program := func(p *bsp.Proc) error {
		var acc int64
		p.SetState(func() []byte {
			var b [8]byte
			binary.BigEndian.PutUint64(b[:], uint64(acc))
			return b[:]
		})
		for p.Superstep() < supersteps {
			acc = bspAccumulate(acc, p.Superstep(), p.PID())
			if err := p.Sync(); err != nil {
				return err
			}
		}
		resMu.Lock()
		results[p.PID()] = acc
		resMu.Unlock()
		return nil
	}
	if err := g.RunBSP(BSPJob{
		Name:            "reference",
		Procs:           procs,
		Alloc:           resource.Vector{MIPS: 800, RAMMB: 128},
		CheckpointEvery: 2,
	}, program); err != nil {
		t.Fatalf("fault-free RunBSP: %v", err)
	}
	resMu.Lock()
	defer resMu.Unlock()
	return append([]int64(nil), results...)
}
