package core

import (
	"errors"
	"fmt"
	"time"

	"integrade/internal/chaos"
	"integrade/internal/lrm"
	"integrade/internal/node"
	"integrade/internal/sim"
)

// chaosCrashOutage is the node-model downtime used for chaos crashes: the
// engine decides when (and whether) the node restarts, so the node itself
// stays down indefinitely until RestartNode revives it.
const chaosCrashOutage = 10 * 365 * 24 * time.Hour

// EnableChaos attaches a deterministic fault-injection engine to the grid:
// it intercepts every ORB invocation (message drop/delay/duplication and
// partitions) and can crash and restart grid nodes by ID. The engine runs
// on the grid clock and a fresh RNG stream derived from seed, independent
// of the grid's own seed, so the same fault schedule can be replayed
// against different workloads. Idempotent: repeated calls return the same
// engine. Nodes added before or after the call are registered either way.
func (g *Grid) EnableChaos(seed int64) *chaos.Engine {
	g.mu.Lock()
	if g.chaos != nil {
		e := g.chaos
		g.mu.Unlock()
		return e
	}
	engine := chaos.NewEngine(g.clock, sim.NewRNG(seed))
	g.chaos = engine
	clusters := make([]*Cluster, 0, len(g.order))
	for _, id := range g.order {
		clusters = append(clusters, g.clusters[id])
	}
	g.mu.Unlock()

	g.orb.SetInterceptor(engine)
	for _, c := range clusters {
		for _, n := range c.Nodes() {
			c.registerChaosNode(engine, n.ID())
		}
	}
	return engine
}

// Chaos returns the attached fault engine, or nil when chaos is disabled.
func (g *Grid) Chaos() *chaos.Engine {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.chaos
}

// registerChaosNode wires a node's crash/restart hooks into the engine.
func (c *Cluster) registerChaosNode(engine *chaos.Engine, nodeID string) {
	engine.RegisterNode(nodeID, chaos.NodeHooks{
		Crash:   func() { _ = c.CrashNodeSilently(nodeID, chaosCrashOutage) },
		Restart: func() { _ = c.RestartNode(nodeID) },
	})
}

// CrashNodeSilently kills a node with no cooperative eviction notice — the
// "pulled power cord" that FailNode cannot model. The node model drops its
// tasks on the floor, the LRM stops heartbeating, and (when chaos is
// enabled) the node's endpoint is isolated so in-flight RPCs to it fail.
// Detecting the loss and rescheduling the work is entirely the GRM failure
// detector's job.
func (c *Cluster) CrashNodeSilently(nodeID string, outage time.Duration) error {
	n, l, err := c.nodeByID(nodeID)
	if err != nil {
		return err
	}
	n.Fail(c.grid.clock.Now(), outage)
	l.Stop()
	if e := c.grid.Chaos(); e != nil {
		e.Isolate(nodeID)
	}
	return nil
}

// RestartNode revives a crashed node with empty state: its endpoint heals,
// its LRM resumes heartbeating, and its first update re-registers it with
// the trader as fresh capacity.
func (c *Cluster) RestartNode(nodeID string) error {
	n, l, err := c.nodeByID(nodeID)
	if err != nil {
		return err
	}
	// Fail with zero outage moves downUntil to now: the node is back up,
	// holding no tasks (a restarted machine remembers nothing).
	n.Fail(c.grid.clock.Now(), 0)
	if e := c.grid.Chaos(); e != nil {
		e.Heal(nodeID)
	}
	l.Start()
	l.SendUpdate()
	return nil
}

func (c *Cluster) nodeByID(nodeID string) (*node.Node, *lrm.LRM, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, n := range c.nodes {
		if n.ID() == nodeID {
			return n, c.lrms[i], nil
		}
	}
	return nil, nil, fmt.Errorf("core: unknown node %q", nodeID)
}

// ErrGangMemberLost is the abort cause handed to BSP runtimes when the
// failure detector evicts a gang member's node.
var ErrGangMemberLost = errors.New("core: gang member node declared dead")

// abortBSP aborts the in-flight BSP runtime attached to appID, if any: the
// gang unwinds at its next barrier and RunBSP restarts it from the latest
// checkpoint.
func (g *Grid) abortBSP(appID string) {
	g.bspMu.Lock()
	rt := g.bspRuns[appID]
	g.bspMu.Unlock()
	if rt != nil {
		rt.Abort(ErrGangMemberLost)
	}
}
