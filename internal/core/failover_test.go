package core

import (
	"encoding/binary"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"integrade/internal/asct"
	"integrade/internal/bsp"
	"integrade/internal/grm"
	"integrade/internal/resource"
)

// failoverSeed selects the chaos/grid seed for the failover suite; `make
// failover` sweeps CHAOS_SEED over 1, 7 and 42 just like the chaos target.
func failoverSeed(t *testing.T) int64 {
	t.Helper()
	seed := int64(1)
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED=%q: %v", s, err)
		}
		seed = v
	}
	return seed
}

// parkedBSP is the shared scaffolding of the failover BSP tests: the crash
// test program from faults_test.go with process 0 parked mid-superstep 3 so
// the test controls exactly when the first attempt unwinds.
type parkedBSP struct {
	reached  chan struct{}
	release  chan struct{}
	relOnce  sync.Once
	restored atomic.Int64
	restStep atomic.Int64
	results  []int64
	mu       sync.Mutex
}

func newParkedBSP(procs int) *parkedBSP {
	return &parkedBSP{
		reached: make(chan struct{}),
		release: make(chan struct{}),
		results: make([]int64, procs),
	}
}

// Release unparks process 0 (idempotent, so a failing test's cleanup can
// call it again without panicking).
func (pb *parkedBSP) Release() { pb.relOnce.Do(func() { close(pb.release) }) }

func (pb *parkedBSP) program(supersteps int) bsp.Program {
	var blockOnce atomic.Bool
	blockOnce.Store(true)
	return func(p *bsp.Proc) error {
		var acc int64
		if st := p.Restored(); st != nil {
			acc = int64(binary.BigEndian.Uint64(st))
			pb.restored.Add(1)
			pb.restStep.Store(int64(p.Superstep()))
		}
		p.SetState(func() []byte {
			var b [8]byte
			binary.BigEndian.PutUint64(b[:], uint64(acc))
			return b[:]
		})
		for p.Superstep() < supersteps {
			acc = bspAccumulate(acc, p.Superstep(), p.PID())
			if p.PID() == 0 && p.Superstep() == 3 && blockOnce.CompareAndSwap(true, false) {
				close(pb.reached)
				<-pb.release
			}
			if err := p.Sync(); err != nil {
				return err
			}
		}
		pb.mu.Lock()
		pb.results[p.PID()] = acc
		pb.mu.Unlock()
		return nil
	}
}

func (pb *parkedBSP) outputs() []int64 {
	pb.mu.Lock()
	defer pb.mu.Unlock()
	return append([]int64(nil), pb.results...)
}

// TestWarmStandbyFailoverMidSuperstep is the headline failover test: a BSP
// gang is parked mid-superstep (checkpoint at superstep 2 already taken)
// when the cluster's primary GRM is crashed. The warm standby must notice
// the silent replication stream, promote itself, and inherit the replicated
// application state; the LRMs must re-resolve the manager through Naming and
// re-register with no orphaned tasks. A subsequent node crash then proves
// the promoted GRM's failure detector and eviction path work end to end: the
// gang resumes from the checkpoint and produces output byte-identical to a
// fault-free run.
func TestWarmStandbyFailoverMidSuperstep(t *testing.T) {
	const (
		procs      = 3
		supersteps = 8
		ckptEvery  = 2
	)
	seed := failoverSeed(t)
	expected := runCrashTestBSP(t, nil)

	g := NewGrid(WithSeed(seed))
	defer g.Stop()
	c, err := g.AddCluster("c1",
		WithSchedulePeriod(15*time.Second),
		WithUpdatePeriod(15*time.Second),
		WithGRMOptions(grm.WithSuspectAfter(45*time.Second)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddNodes(DedicatedNodes(4, 1000)); err != nil {
		t.Fatal(err)
	}
	engine := g.EnableChaos(seed)

	if err := c.EnableStandby(); err != nil {
		t.Fatal(err)
	}
	sb := c.Standby()
	if sb == nil {
		t.Fatal("no standby after EnableStandby")
	}
	if sb.Role() != grm.RoleStandby || c.GRM().Role() != grm.RolePrimary {
		t.Fatalf("roles = %v / %v", c.GRM().Role(), sb.Role())
	}
	// Let the replication stream establish a cadence.
	if err := g.Advance(time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := c.GRM().ReplicationStats().BatchesSent; got < 2 {
		t.Fatalf("replication batches sent = %d, want >= 2", got)
	}
	if got := sb.Stats().ReplicaBatches; got < 2 {
		t.Fatalf("replica batches applied = %d, want >= 2", got)
	}

	pb := newParkedBSP(procs)
	defer pb.Release()
	done := make(chan error, 1)
	go func() {
		done <- g.RunBSP(BSPJob{
			Name:            "failover-warm",
			Procs:           procs,
			Alloc:           resource.Vector{MIPS: 800, RAMMB: 128},
			CheckpointEvery: ckptEvery,
			MaxRestarts:     3,
		}, pb.program(supersteps))
	}()
	select {
	case <-pb.reached:
	case <-time.After(30 * time.Second):
		t.Fatal("gang never reached superstep 3")
	}
	// Replicate the in-flight application, then pull the primary's plug.
	if err := g.Advance(time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := g.CrashGRM("c1"); err != nil {
		t.Fatal(err)
	}
	if err := g.Advance(5 * time.Minute); err != nil {
		t.Fatal(err)
	}

	promoted := c.GRM()
	if promoted != sb {
		t.Fatal("active manager is not the promoted standby")
	}
	if promoted.Role() != grm.RolePrimary {
		t.Fatalf("promoted role = %v", promoted.Role())
	}
	stats := promoted.Stats()
	if stats.Promotions != 1 {
		t.Fatalf("Promotions = %d, want 1", stats.Promotions)
	}
	if stats.NodesDeclaredDead != 0 {
		t.Fatalf("spurious deaths after failover: %d", stats.NodesDeclaredDead)
	}
	if got := promoted.KnownNodes(); got != 4 {
		t.Fatalf("KnownNodes after failover = %d, want 4", got)
	}
	orphans := 0
	for _, l := range c.LRMs() {
		ls := l.Stats()
		if ls.Reregistrations < 1 {
			t.Fatalf("node %s never re-registered: %+v", l.Node().ID(), ls)
		}
		orphans += ls.OrphansCancelled
	}
	// Warm failover: the replicated state covers every running task, so the
	// reconcile exchange must reap nothing.
	if orphans != 0 {
		t.Fatalf("orphans cancelled after warm failover = %d, want 0", orphans)
	}
	appIDs := promoted.AppIDs()
	if len(appIDs) != 1 {
		t.Fatalf("replicated apps = %v", appIDs)
	}

	// Now crash a gang member's machine: the promoted GRM must detect it,
	// roll the gang back together, and the run must resume from the
	// checkpoint — the promoted manager is a fully functional primary.
	st, err := promoted.AppStatus(appIDs[0])
	if err != nil {
		t.Fatal(err)
	}
	victim := st.Tasks[0].NodeID
	if victim == "" {
		t.Fatalf("placeholder not placed: %+v", st.Tasks)
	}
	engine.ScheduleCrash(victim, time.Second, 0)
	if err := g.Advance(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := promoted.Stats().NodesDeclaredDead; got != 1 {
		t.Fatalf("NodesDeclaredDead = %d, want 1", got)
	}
	pb.Release()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("RunBSP: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RunBSP did not finish after failover recovery")
	}
	if got := pb.restored.Load(); got != procs {
		t.Fatalf("restored processes = %d, want %d", got, procs)
	}
	if got := pb.restStep.Load(); got != 2 {
		t.Fatalf("restored superstep = %d, want 2", got)
	}
	got := pb.outputs()
	for pid := range expected {
		if got[pid] != expected[pid] {
			t.Fatalf("proc %d output %d != fault-free %d", pid, got[pid], expected[pid])
		}
	}
	if apps := g.Checkpoints().Apps(); len(apps) != 0 {
		t.Fatalf("snapshots left after success: %v", apps)
	}
}

// TestFailoverDuringRegistrationBurst crashes the primary in the middle of a
// registration burst: four nodes are established (and replicated), four more
// join just as the manager dies, so their very first updates land on a dead
// endpoint. The standby must promote and the entire fleet — veterans and
// newcomers alike — must converge on it through Naming, after which the
// cluster schedules a full bag of tasks normally.
func TestFailoverDuringRegistrationBurst(t *testing.T) {
	seed := failoverSeed(t)
	g := NewGrid(WithSeed(seed))
	defer g.Stop()
	c, err := g.AddCluster("c1",
		WithSchedulePeriod(15*time.Second),
		WithUpdatePeriod(15*time.Second),
		WithGRMOptions(grm.WithSuspectAfter(45*time.Second)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddNodes(DedicatedNodes(4, 1000)); err != nil {
		t.Fatal(err)
	}
	g.EnableChaos(seed)
	if err := c.EnableStandby(); err != nil {
		t.Fatal(err)
	}
	if err := g.Advance(time.Minute); err != nil {
		t.Fatal(err)
	}

	// Kill the primary, then add the burst: their initial registrations all
	// fail against the dead endpoint.
	if err := g.CrashGRM("c1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddNodes(DedicatedNodes(4, 1000)); err != nil {
		t.Fatal(err)
	}
	if err := g.Advance(5 * time.Minute); err != nil {
		t.Fatal(err)
	}

	promoted := c.GRM()
	if promoted.Role() != grm.RolePrimary {
		t.Fatalf("role = %v", promoted.Role())
	}
	if got := promoted.Stats().Promotions; got != 1 {
		t.Fatalf("Promotions = %d, want 1", got)
	}
	if got := promoted.KnownNodes(); got != 8 {
		t.Fatalf("KnownNodes = %d, want 8", got)
	}
	for _, l := range c.LRMs() {
		if l.Stats().Reregistrations < 1 {
			t.Fatalf("node %s never registered with the promoted GRM", l.Node().ID())
		}
	}

	// The healed cluster must do real work: one task per node.
	h, err := g.SubmitTo("c1", asct.NewApplication("post-failover").
		Parametric(8, 60_000).
		Allocate(resource.Vector{MIPS: 500, RAMMB: 64}))
	if err != nil {
		t.Fatal(err)
	}
	st, err := h.WaitSimulated(30*time.Minute, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range st.Tasks {
		if task.State.String() != "done" {
			t.Fatalf("task %s = %v after failover", task.TaskID, task.State)
		}
	}
}

// TestDoubleFailoverColdRebuild kills the manager twice: the first failover
// is absorbed by the warm standby; the second leaves the cluster headless
// until RestartGRM rebuilds an empty manager from cold. Self-healing then
// runs the long way around — LRMs re-register through Naming, the reconcile
// exchange reaps the dead incarnations' orphaned placeholder tasks to free
// their capacity, and the in-flight BSP job re-acquires a fresh gang and
// resumes from its checkpoint with zero lost completed work.
func TestDoubleFailoverColdRebuild(t *testing.T) {
	const (
		procs      = 3
		supersteps = 8
		ckptEvery  = 2
	)
	seed := failoverSeed(t)
	expected := runCrashTestBSP(t, nil)

	g := NewGrid(WithSeed(seed))
	defer g.Stop()
	c, err := g.AddCluster("c1",
		WithSchedulePeriod(15*time.Second),
		WithUpdatePeriod(15*time.Second),
		WithGRMOptions(grm.WithSuspectAfter(45*time.Second)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddNodes(DedicatedNodes(4, 1000)); err != nil {
		t.Fatal(err)
	}
	g.EnableChaos(seed)
	if err := c.EnableStandby(); err != nil {
		t.Fatal(err)
	}
	if err := g.Advance(time.Minute); err != nil {
		t.Fatal(err)
	}

	pb := newParkedBSP(procs)
	defer pb.Release()
	done := make(chan error, 1)
	go func() {
		done <- g.RunBSP(BSPJob{
			Name:            "failover-double",
			Procs:           procs,
			Alloc:           resource.Vector{MIPS: 800, RAMMB: 128},
			CheckpointEvery: ckptEvery,
			MaxRestarts:     3,
		}, pb.program(supersteps))
	}()
	select {
	case <-pb.reached:
	case <-time.After(30 * time.Second):
		t.Fatal("gang never reached superstep 3")
	}
	if err := g.Advance(time.Minute); err != nil {
		t.Fatal(err)
	}

	// First failover: forced promotion of the warm standby.
	if err := g.PromoteGRM("c1"); err != nil {
		t.Fatal(err)
	}
	if err := g.Advance(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	first := c.GRM()
	if first.Stats().Promotions != 1 {
		t.Fatalf("Promotions = %d, want 1", first.Stats().Promotions)
	}
	if got := first.KnownNodes(); got != 4 {
		t.Fatalf("KnownNodes after first failover = %d, want 4", got)
	}

	// Second failover: no standby this time. The cluster goes headless; the
	// LRMs cycle in their re-registration backoff against a dead binding.
	if err := g.CrashGRM("c1"); err != nil {
		t.Fatal(err)
	}
	if err := g.Advance(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	// Cold rebuild: a fresh, empty manager. The in-flight run's placement
	// died with the old incarnations; the runtime is aborted so it re-acquires.
	if err := g.RestartGRM("c1"); err != nil {
		t.Fatal(err)
	}
	if err := g.Advance(5 * time.Minute); err != nil {
		t.Fatal(err)
	}

	cold := c.GRM()
	if cold == first {
		t.Fatal("RestartGRM did not swap the manager")
	}
	if got := cold.KnownNodes(); got != 4 {
		t.Fatalf("KnownNodes after cold rebuild = %d, want 4", got)
	}
	// The dead incarnation's placeholder tasks were reaped via reconcile,
	// freeing the capacity the new gang needs.
	orphans := 0
	for _, l := range c.LRMs() {
		orphans += l.Stats().OrphansCancelled
	}
	if orphans != procs {
		t.Fatalf("orphans cancelled = %d, want %d", orphans, procs)
	}
	if got := cold.Stats().TasksReconciled; got != procs {
		t.Fatalf("TasksReconciled = %d, want %d", got, procs)
	}

	// Unpark: the first attempt unwinds with the manager-lost abort, RunBSP
	// re-acquires a gang under the cold manager and resumes from the
	// checkpoint at superstep 2.
	pb.Release()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("RunBSP: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RunBSP did not finish after cold rebuild")
	}
	if got := pb.restored.Load(); got != procs {
		t.Fatalf("restored processes = %d, want %d", got, procs)
	}
	if got := pb.restStep.Load(); got != 2 {
		t.Fatalf("restored superstep = %d, want 2", got)
	}
	got := pb.outputs()
	for pid := range expected {
		if got[pid] != expected[pid] {
			t.Fatalf("proc %d output %d != fault-free %d", pid, got[pid], expected[pid])
		}
	}
	if apps := g.Checkpoints().Apps(); len(apps) != 0 {
		t.Fatalf("snapshots left after success: %v", apps)
	}
}
