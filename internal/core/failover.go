package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"integrade/internal/bsp"
	"integrade/internal/election"
	"integrade/internal/grm"
	"integrade/internal/gupa"
	"integrade/internal/hierarchy"
	"integrade/internal/orb"
	"integrade/internal/protocol"
)

// ErrManagerLost is the abort cause handed to in-flight BSP runtimes when
// their cluster's manager is torn down and rebuilt from cold: the placement
// the run holds no longer exists anywhere, so RunBSP must re-acquire a gang
// before resuming from the last checkpoint.
var ErrManagerLost = errors.New("core: cluster manager lost")

// manager is one incarnation of a cluster's management plane: the GRM (with
// its embedded trader), the GUPA and the hierarchy node, all served from one
// loopback endpoint. Failover swaps the whole incarnation at once.
type manager struct {
	grm     *grm.GRM
	gupaSvc *gupa.Service
	hnode   *hierarchy.Node
	ep      string // loopback endpoint name (also the chaos-isolation addr)
	adapter *orb.Adapter
	grmRef  orb.ObjectRef
	gupaRef orb.ObjectRef
	href    orb.ObjectRef
	// elect is this incarnation's consensus node when the cluster runs a
	// replica set (nil otherwise).
	elect *election.Node
}

// grmName is a cluster manager's well-known Naming path.
func grmName(clusterID string) string { return "clusters/" + clusterID + "/grm" }

// buildManager constructs (but does not start) a manager incarnation on its
// own endpoint. Generation 0 is the original manager; later generations get
// suffixed endpoints and their own RNG streams so a failover never replays
// the dead incarnation's randomness.
func (c *Cluster) buildManager(gen int) (*manager, error) {
	g := c.grid
	ep, rngName := "mgr-"+c.id, "grm-"+c.id
	if gen > 0 {
		ep = fmt.Sprintf("mgr-%s-g%d", c.id, gen)
		rngName = fmt.Sprintf("grm-%s-g%d", c.id, gen)
	}
	m := &manager{ep: ep}
	// The manager's outbound traffic — placements, cancels, replication — is
	// source-stamped so chaos one-way partitions can sever, say, just the
	// replication link while the data plane stays up (the split-brain cases
	// in bench E13 and the consensus suite).
	m.grm = grm.New(c.id, g.clock, &sourceInvoker{g: g, source: ep}, append([]grm.Option{
		grm.WithRNG(g.rng.Fork(rngName)),
		grm.WithLogger(g.log),
		grm.WithEvictionObserver(g.abortBSP),
	}, c.grmOpts...)...)
	m.gupaSvc = gupa.NewService()
	m.hnode = hierarchy.NewNode(m.grm, g.orb)

	adapter := orb.NewAdapter()
	m.adapter = adapter
	if err := adapter.Register(protocol.GRMKey, m.grm.Servant()); err != nil {
		return nil, err
	}
	if err := adapter.Register(gupa.ObjectKey, gupa.Servant(m.gupaSvc)); err != nil {
		return nil, err
	}
	if err := adapter.Register(hierarchy.ObjectKey, m.hnode.Servant()); err != nil {
		return nil, err
	}
	bound, err := g.orb.BindLoopback(ep, adapter)
	if err != nil {
		return nil, err
	}
	m.grmRef = orb.ObjectRef{Endpoint: bound, Key: protocol.GRMKey}
	m.gupaRef = orb.ObjectRef{Endpoint: bound, Key: gupa.ObjectKey}
	m.href = orb.ObjectRef{Endpoint: bound, Key: hierarchy.ObjectKey}
	m.hnode.SetSelfRef(m.href)
	return m, nil
}

// EnableStandby attaches a warm-standby manager to the cluster: a passive
// GRM incarnation that tails the primary's replication stream and promotes
// itself when the stream goes silent past the detection threshold. Calling
// it again replaces any previous standby with a fresh one (re-armed after a
// failover, for instance).
func (c *Cluster) EnableStandby() error {
	c.mgmtMu.Lock()
	c.gen++
	gen := c.gen
	primary := c.mgr
	c.mgmtMu.Unlock()

	sb, err := c.buildManager(gen)
	if err != nil {
		return err
	}
	sb.grm.BecomeStandby(grm.StandbyConfig{OnPromote: func() { c.promoteStandby() }})

	c.mgmtMu.Lock()
	old := c.standby
	c.standby = sb
	c.mgmtMu.Unlock()
	if old != nil {
		old.grm.Stop()
		c.grid.orb.Loopback().Unbind(old.ep)
	}
	primary.grm.AttachStandby(sb.grmRef)
	return nil
}

// Standby returns the cluster's warm-standby GRM, or nil when none is armed.
func (c *Cluster) Standby() *grm.GRM {
	c.mgmtMu.Lock()
	defer c.mgmtMu.Unlock()
	if c.standby == nil {
		return nil
	}
	return c.standby.grm
}

// ManagerEndpoint returns the active manager's loopback endpoint name — the
// address chaos partitions and directional rules operate on.
func (c *Cluster) ManagerEndpoint() string {
	c.mgmtMu.Lock()
	defer c.mgmtMu.Unlock()
	return c.mgr.ep
}

// StandbyEndpoint returns the warm standby's endpoint name, or "" when no
// standby is armed.
func (c *Cluster) StandbyEndpoint() string {
	c.mgmtMu.Lock()
	defer c.mgmtMu.Unlock()
	if c.standby == nil {
		return ""
	}
	return c.standby.ep
}

// crashManager kills one manager incarnation: its election node (if any) and
// timers stop, its endpoint disappears, and every call to it fails with a
// transport error.
func (g *Grid) crashManager(c *Cluster, mgr *manager) {
	if mgr.elect != nil {
		mgr.elect.Stop()
	}
	mgr.grm.Stop()
	g.orb.Loopback().Unbind(mgr.ep)
	if e := g.Chaos(); e != nil {
		e.Isolate(mgr.ep)
	}
	g.log.Info("GRM crashed", "cluster", c.id, "endpoint", mgr.ep)
}

// CrashGRM kills a cluster's active manager with no warning: its timers
// stop, its endpoint disappears, and every call to it — LRM updates, status
// queries, replication acks — fails with a transport error. Detection and
// recovery are entirely up to the standby monitor, the election (when a
// replica set is armed) and the LRMs' re-registration loops. The chaos hook
// for experiment E13 and the failover tests.
func (g *Grid) CrashGRM(clusterID string) error {
	c, ok := g.Cluster(clusterID)
	if !ok {
		return fmt.Errorf("core: unknown cluster %q", clusterID)
	}
	c.mgmtMu.Lock()
	mgr := c.mgr
	c.mgmtMu.Unlock()
	g.crashManager(c, mgr)
	return nil
}

// PromoteGRM forces an immediate failover: the active manager is crashed and
// the standby promotes without waiting for its heartbeat monitor to time the
// primary out. It is an error when no standby is armed.
//
// The standby and the primary are snapshotted under one lock section: reading
// them in separate critical sections (as CrashGRM would) races the silence
// monitor's concurrent promotion, which swaps mgr/standby between the reads —
// the crash would then hit the freshly promoted manager instead of the dead
// primary, firing the promotion path twice.
func (g *Grid) PromoteGRM(clusterID string) error {
	c, ok := g.Cluster(clusterID)
	if !ok {
		return fmt.Errorf("core: unknown cluster %q", clusterID)
	}
	c.mgmtMu.Lock()
	sb, mgr := c.standby, c.mgr
	c.mgmtMu.Unlock()
	if sb == nil {
		return fmt.Errorf("core: cluster %q has no standby", clusterID)
	}
	g.crashManager(c, mgr)
	sb.grm.Promote() // fires OnPromote -> promoteStandby; single-flight
	return nil
}

// promoteStandby is the OnPromote callback: the standby has already switched
// role and started scheduling; here the grid swaps it in as the cluster's
// active manager and re-points Naming and the hierarchy at it.
//
// The deposed primary is NOT stopped here. The promotion fired because the
// replication stream went silent — usually a dead primary, but possibly a
// partition, and across a partition no one can reach the old incarnation to
// fence it. Stopping it through a direct in-process handle would grant the
// simulation a power a real deployment lacks and hide the silence-monitor's
// split-brain window (bench E13's warm/partition row measures exactly the
// writes a deposed-but-alive primary still gets accepted; the consensus
// replica set closes that window with fencing epochs). The deposed manager
// is tracked so Cluster teardown still reaps its timers.
func (c *Cluster) promoteStandby() {
	c.mgmtMu.Lock()
	sb := c.standby
	if sb == nil {
		c.mgmtMu.Unlock()
		return
	}
	old := c.mgr
	c.mgr = sb
	c.standby = nil
	c.deposed = append(c.deposed, old)
	c.mgmtMu.Unlock()

	c.grid.rebindManager(c, sb)
	c.grid.log.Info("standby GRM promoted", "cluster", c.id, "endpoint", sb.ep)
}

// RestartGRM rebuilds a cluster's manager from cold: a fresh, empty GRM on a
// new endpoint. No state carries over — the cluster re-heals entirely from
// LRM re-registration (which re-exports the trader offers) and from the
// reconcile exchange that reaps the dead manager's orphaned placements.
// Any stale standby of the dead manager is discarded, and in-flight BSP runs
// that held placements under the old manager are aborted with ErrManagerLost
// so they re-acquire under the new one.
func (g *Grid) RestartGRM(clusterID string) error {
	c, ok := g.Cluster(clusterID)
	if !ok {
		return fmt.Errorf("core: unknown cluster %q", clusterID)
	}
	c.mgmtMu.Lock()
	c.gen++
	gen := c.gen
	c.mgmtMu.Unlock()

	m, err := c.buildManager(gen)
	if err != nil {
		return err
	}
	m.grm.Start()

	c.mgmtMu.Lock()
	old := c.mgr
	c.mgr = m
	sb := c.standby
	c.standby = nil
	c.mgmtMu.Unlock()

	old.grm.Stop()
	g.orb.Loopback().Unbind(old.ep)
	if sb != nil {
		sb.grm.Stop()
		g.orb.Loopback().Unbind(sb.ep)
	}
	g.rebindManager(c, m)
	g.abortClusterRuns(clusterID)
	g.log.Info("GRM rebuilt from cold", "cluster", clusterID, "endpoint", m.ep)
	return nil
}

// rebindManager points the grid's shared directory state at a cluster's new
// manager incarnation: the Naming binding LRMs re-resolve through, and the
// hierarchy links (the new node inherits the recorded topology, and each
// neighbour's link is re-pointed at the new reference).
func (g *Grid) rebindManager(c *Cluster, m *manager) {
	_ = g.naming.Rebind(grmName(c.id), m.grmRef)

	g.mu.Lock()
	links := make(map[string]string, len(g.links))
	for child, parent := range g.links {
		links[child] = parent
	}
	clusters := make(map[string]*Cluster, len(g.clusters))
	for id, cl := range g.clusters {
		clusters[id] = cl
	}
	g.mu.Unlock()

	if parentID, ok := links[c.id]; ok {
		if parent := clusters[parentID]; parent != nil {
			pm := parent.manager()
			m.hnode.SetParent(pm.href)
			pm.hnode.AddChild(c.id, m.href)
		}
	}
	children := make([]string, 0, len(links))
	for child, parent := range links {
		if parent == c.id {
			children = append(children, child)
		}
	}
	sort.Strings(children)
	for _, childID := range children {
		if ch := clusters[childID]; ch != nil {
			cm := ch.manager()
			m.hnode.AddChild(childID, cm.href)
			cm.hnode.SetParent(m.href)
		}
	}
}

// abortClusterRuns aborts every in-flight BSP runtime whose placement lived
// under the named cluster's (now destroyed) manager.
func (g *Grid) abortClusterRuns(clusterID string) {
	prefix := clusterID + "-app-"
	g.bspMu.Lock()
	ids := make([]string, 0, len(g.bspRuns))
	for appID := range g.bspRuns {
		if strings.HasPrefix(appID, prefix) {
			ids = append(ids, appID)
		}
	}
	sort.Strings(ids)
	victims := make([]*bsp.Runtime, 0, len(ids))
	for _, appID := range ids {
		if rt := g.bspRuns[appID]; rt != nil {
			victims = append(victims, rt)
		}
	}
	g.bspMu.Unlock()
	for _, rt := range victims {
		rt.Abort(ErrManagerLost)
	}
}
