package core

import (
	"encoding/binary"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"integrade/internal/bsp"
	"integrade/internal/resource"
)

func bspGrid(t *testing.T, nodes int, mips float64) (*Grid, *Cluster) {
	t.Helper()
	g := NewGrid(WithSeed(21))
	t.Cleanup(g.Stop)
	c, err := g.AddCluster("hpc")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddNodes(DedicatedNodes(nodes, mips)); err != nil {
		t.Fatal(err)
	}
	return g, c
}

func TestRunBSPComputesAndReleases(t *testing.T) {
	g, c := bspGrid(t, 4, 1000)
	var mu sync.Mutex
	sums := map[int]float64{}
	err := g.RunBSP(BSPJob{
		Name:  "allreduce",
		Procs: 4,
		Alloc: resource.Vector{MIPS: 800, RAMMB: 128},
	}, func(p *bsp.Proc) error {
		s, err := p.AllReduceFloat64(float64(p.PID()+1), bsp.Sum)
		if err != nil {
			return err
		}
		mu.Lock()
		sums[p.PID()] = s
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for pid := 0; pid < 4; pid++ {
		if sums[pid] != 10 {
			t.Fatalf("pid %d sum = %v, want 10", pid, sums[pid])
		}
	}
	// The gang is released: every node ledger is fully free again.
	now := g.Now()
	for _, n := range c.Nodes() {
		if len(n.RunningTasks()) != 0 {
			t.Fatalf("node %s still holds placeholder tasks", n.ID())
		}
		if free := n.Ledger().Free(now); free != n.Ledger().Capacity() {
			t.Fatalf("node %s not released: free %v", n.ID(), free)
		}
	}
	// Successful completion drops the job's checkpoint.
	if _, err := g.Checkpoints().Latest("allreduce"); err == nil {
		t.Fatal("checkpoint not dropped after success")
	}
}

func TestRunBSPHoldsRealCapacity(t *testing.T) {
	g, _ := bspGrid(t, 2, 1000)
	// While the program runs, the gang genuinely occupies the nodes: a
	// concurrent placement check from inside the program must see no free
	// capacity for another 2-proc 800-MIPS gang.
	err := g.RunBSP(BSPJob{
		Name:  "holder",
		Procs: 2,
		Alloc: resource.Vector{MIPS: 800, RAMMB: 128},
	}, func(p *bsp.Proc) error {
		if p.PID() == 0 {
			c, _ := g.Cluster("hpc")
			for _, n := range c.Nodes() {
				free := n.Ledger().Free(g.Now())
				if free.MIPS >= 800 {
					return errors.New("node not actually held during RunBSP")
				}
			}
		}
		return p.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunBSPRecoversFromProgramFailure(t *testing.T) {
	g, _ := bspGrid(t, 4, 1000)
	var failed atomic.Bool
	const steps = 6
	err := g.RunBSP(BSPJob{
		Name:            "crashy",
		Procs:           4,
		Alloc:           resource.Vector{MIPS: 500, RAMMB: 64},
		CheckpointEvery: 2,
		MaxRestarts:     1,
	}, func(p *bsp.Proc) error {
		var sum uint64
		if st := p.Restored(); st != nil {
			sum = binary.BigEndian.Uint64(st)
		}
		p.SetState(func() []byte {
			var b [8]byte
			binary.BigEndian.PutUint64(b[:], sum)
			return b[:]
		})
		for p.Superstep() < steps {
			if p.PID() == 1 && p.Superstep() == 5 && !failed.Load() {
				failed.Store(true)
				return errors.New("injected eviction")
			}
			sum += uint64(p.Superstep() + 1)
			if err := p.Sync(); err != nil {
				return err
			}
		}
		want := uint64(steps * (steps + 1) / 2)
		if sum != want {
			return errors.New("wrong sum after recovery")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !failed.Load() {
		t.Fatal("failure injection never fired")
	}
}

func TestRunBSPFailsWithoutCapacity(t *testing.T) {
	g, _ := bspGrid(t, 2, 1000)
	err := g.RunBSP(BSPJob{
		Name:  "too-big",
		Procs: 8,
		Alloc: resource.Vector{MIPS: 800, RAMMB: 128},
	}, func(p *bsp.Proc) error { return nil })
	if err == nil {
		t.Fatal("oversized gang accepted")
	}
}

func TestRunBSPValidation(t *testing.T) {
	g, _ := bspGrid(t, 1, 1000)
	if err := g.RunBSP(BSPJob{Procs: 1}, func(*bsp.Proc) error { return nil }); err == nil {
		t.Fatal("nameless job accepted")
	}
	if err := g.RunBSP(BSPJob{Name: "x", Procs: 0}, func(*bsp.Proc) error { return nil }); err == nil {
		t.Fatal("zero-proc job accepted")
	}
}

func TestRunBSPExhaustsRestarts(t *testing.T) {
	g, _ := bspGrid(t, 1, 1000)
	calls := 0
	err := g.RunBSP(BSPJob{
		Name:        "hopeless",
		Procs:       1,
		Alloc:       resource.Vector{MIPS: 100, RAMMB: 16},
		MaxRestarts: 2,
	}, func(p *bsp.Proc) error {
		calls++
		return errors.New("always fails")
	})
	if err == nil {
		t.Fatal("hopeless job succeeded")
	}
	if calls != 3 {
		t.Fatalf("attempts = %d, want 3 (1 + 2 restarts)", calls)
	}
}
