package core

import (
	"sync"
	"testing"
	"time"

	"integrade/internal/asct"
	"integrade/internal/grm"
	"integrade/internal/lrm"
	"integrade/internal/protocol"
	"integrade/internal/resource"
	"integrade/internal/sim"
	"integrade/internal/usage"
)

func TestGridLifecycle(t *testing.T) {
	g := NewGrid(WithSeed(7))
	defer g.Stop()
	c, err := g.AddCluster("ime")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddCluster("ime"); err == nil {
		t.Fatal("duplicate cluster accepted")
	}
	ids, err := c.AddNodes(DedicatedNodes(3, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("ids = %v", ids)
	}
	if got := c.GRM().KnownNodes(); got != 3 {
		t.Fatalf("KnownNodes = %d", got)
	}
	if got := g.Clusters(); len(got) != 1 || got[0] != "ime" {
		t.Fatalf("Clusters = %v", got)
	}
	g.Stop()
	g.Stop() // idempotent
}

func TestQuickstartScenario(t *testing.T) {
	g := NewGrid(WithSeed(7))
	defer g.Stop()
	c, err := g.AddCluster("ime")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddNodes(DedicatedNodes(4, 1000)); err != nil {
		t.Fatal(err)
	}
	h, err := g.Submit(asct.NewApplication("demo").
		Sequential(600_000).
		RequireMinimum(resource.Vector{MIPS: 500, RAMMB: 16}).
		Allocate(resource.Vector{MIPS: 1000, RAMMB: 64}).
		PreferFasterCPU())
	if err != nil {
		t.Fatal(err)
	}
	st, err := h.WaitSimulated(time.Hour, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done() {
		t.Fatalf("not done: %+v", st.Tasks)
	}
	if h.ClusterID() != "ime" || h.Hops() != 0 {
		t.Fatalf("handle = %s hops %d", h.ClusterID(), h.Hops())
	}
}

func TestHierarchicalRouting(t *testing.T) {
	g := NewGrid(WithSeed(7))
	defer g.Stop()
	root, err := g.AddCluster("root")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := root.AddNodes(DedicatedNodes(1, 200)); err != nil {
		t.Fatal(err)
	}
	big, err := g.AddCluster("big")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := big.AddNodes(DedicatedNodes(4, 2000)); err != nil {
		t.Fatal(err)
	}
	if err := g.LinkChild("root", "big"); err != nil {
		t.Fatal(err)
	}
	if err := g.LinkChild("root", "ghost"); err == nil {
		t.Fatal("linking unknown cluster succeeded")
	}
	h, err := g.Submit(asct.NewApplication("heavy").
		Sequential(60_000).
		Allocate(resource.Vector{MIPS: 1500, RAMMB: 64}))
	if err != nil {
		t.Fatal(err)
	}
	if h.ClusterID() != "big" || h.Hops() != 1 {
		t.Fatalf("routed to %s with %d hops", h.ClusterID(), h.Hops())
	}
	st, err := h.WaitSimulated(time.Hour, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done() {
		t.Fatal("routed app incomplete")
	}
}

func TestDesktopGridWithEvictionRecovery(t *testing.T) {
	g := NewGrid(WithSeed(11))
	defer g.Stop()
	c, err := g.AddCluster("lab", WithPolicy(grm.UsageAware{}), WithSchedulePeriod(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	// A mixed cluster: offices that will evict at 09:00 plus a few
	// dedicated machines as fallback.
	if _, err := c.AddNodes(DesktopNodes(6, usage.OfficeWorker)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddNodes(DedicatedNodes(2, 600)); err != nil {
		t.Fatal(err)
	}
	// Submit at 03:00 a batch that outlives the night.
	if err := g.Advance(3 * time.Hour); err != nil {
		t.Fatal(err)
	}
	h, err := g.Submit(asct.NewApplication("sweep").
		Parametric(4, 10*3600*450). // ~10 h at 450 MIPS
		Allocate(resource.Vector{MIPS: 450, RAMMB: 64}).
		Checkpoint(3600 * 450)) // hourly checkpoints
	if err != nil {
		t.Fatal(err)
	}
	// Run for 36 simulated hours.
	if err := g.Advance(36 * time.Hour); err != nil {
		t.Fatal(err)
	}
	st, err := h.Status()
	if err != nil {
		t.Fatal(err)
	}
	stats := c.GRM().Stats()
	done := 0
	for _, task := range st.Tasks {
		if task.State == protocol.TaskDone {
			done++
		}
	}
	if done == 0 {
		t.Fatalf("no tasks done after 36h; stats=%+v tasks=%+v", stats, st.Tasks)
	}
	if c.DeliveredWork() <= 0 {
		t.Fatal("no work delivered")
	}
}

func TestFailNodeEvictsAndNotifies(t *testing.T) {
	g := NewGrid(WithSeed(3))
	defer g.Stop()
	c, err := g.AddCluster("x", WithSchedulePeriod(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddNodes(DedicatedNodes(2, 1000)); err != nil {
		t.Fatal(err)
	}
	h, err := g.Submit(asct.NewApplication("victim").
		Sequential(3600 * 1000). // 1 h at 1000 MIPS
		Allocate(resource.Vector{MIPS: 1000, RAMMB: 64}).
		Checkpoint(600 * 1000)) // every 10 min of progress
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Advance(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	st, err := h.Status()
	if err != nil {
		t.Fatal(err)
	}
	victimNode := st.Tasks[0].NodeID
	if victimNode == "" {
		t.Fatal("task not placed")
	}
	if err := c.FailNode(victimNode, 2*time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := c.FailNode("ghost", time.Hour); err == nil {
		t.Fatal("failing unknown node succeeded")
	}
	// The task restarts from its checkpoint on the surviving node and
	// completes; total simulated time generously covers the redo.
	st, err = h.WaitSimulated(3*time.Hour, time.Minute)
	if err != nil {
		t.Fatalf("%v (stats %+v)", err, c.GRM().Stats())
	}
	if st.Tasks[0].Restarts < 1 {
		t.Fatalf("restarts = %d", st.Tasks[0].Restarts)
	}
	if st.Tasks[0].NodeID == victimNode {
		t.Fatal("task restarted on the crashed node")
	}
	stats := c.GRM().Stats()
	if stats.TasksEvicted < 1 || stats.Restarts < 1 {
		t.Fatalf("stats = %+v", stats)
	}
	// Checkpointing bounds the lost work to one interval per eviction.
	if stats.WorkLostMI > float64(stats.TasksEvicted)*600*1000 {
		t.Fatalf("WorkLostMI = %v", stats.WorkLostMI)
	}
}

func TestFailRandomNodes(t *testing.T) {
	g := NewGrid(WithSeed(5))
	defer g.Stop()
	c, err := g.AddCluster("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddNodes(DedicatedNodes(5, 1000)); err != nil {
		t.Fatal(err)
	}
	failed := c.FailRandomNodes(2, time.Hour)
	if len(failed) != 2 {
		t.Fatalf("failed = %v", failed)
	}
	down := 0
	for _, n := range c.Nodes() {
		if n.IsDown(g.Now()) {
			down++
		}
	}
	if down != 2 {
		t.Fatalf("down = %d", down)
	}
}

func TestGridAdvanceRequiresVirtualClock(t *testing.T) {
	g := NewGrid(WithClock(sim.RealClock{}))
	defer g.Stop()
	if err := g.Advance(time.Second); err == nil {
		t.Fatal("Advance on wall clock succeeded")
	}
}

func TestSubmitToCluster(t *testing.T) {
	g := NewGrid(WithSeed(7))
	defer g.Stop()
	c, err := g.AddCluster("only")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddNodes(DedicatedNodes(1, 1000)); err != nil {
		t.Fatal(err)
	}
	h, err := g.SubmitTo("only", asct.NewApplication("direct").
		Sequential(60_000).
		Allocate(resource.Vector{MIPS: 500, RAMMB: 32}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.SubmitTo("ghost", asct.NewApplication("x").Sequential(1)); err == nil {
		t.Fatal("unknown cluster accepted")
	}
	if _, err := h.WaitSimulated(time.Hour, time.Minute); err != nil {
		t.Fatal(err)
	}
}

// TestStopConcurrentWithAccessors locks down the Grid.Stop restructuring:
// teardown (cluster stop, ORB close) runs outside g.mu, so grid accessors
// and a second Stop may proceed while the first tears the clusters down.
// Before the change this test could only pass by waiting for the full
// teardown under the grid lock; now it exercises the concurrent path under
// the race detector.
func TestStopConcurrentWithAccessors(t *testing.T) {
	g := NewGrid(WithSeed(11))
	if _, err := g.AddCluster("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddCluster("b"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				g.Clusters()
				g.Cluster("a")
			}
		}()
	}
	wg.Add(2)
	go func() { defer wg.Done(); g.Stop() }()
	go func() { defer wg.Done(); g.Stop() }()
	wg.Wait()
	if got := g.Clusters(); len(got) != 2 {
		t.Fatalf("Clusters after Stop = %v", got)
	}
}

func TestGracefulDepartureDrainsBeforeOwnerReturns(t *testing.T) {
	// The intermittent-fleet path end to end: office-worker desktops train
	// their LUPA for a week, the cluster runs window-aware with the
	// pre-departure drain armed, and overnight grid work is checkpointed and
	// handed back BEFORE the 09:00 owner arrivals instead of being evicted.
	g := NewGrid(WithSeed(11))
	defer g.Stop()
	c, err := g.AddCluster("lab",
		WithPolicy(grm.UsageAware{}),
		WithSchedulePeriod(time.Minute),
		WithGRMOptions(grm.WithWindowAware()),
		WithLRMOptions(lrm.WithDepartureDrain(15*time.Minute)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddNodes(DesktopNodes(4, usage.OfficeWorker)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddNodes(DedicatedNodes(1, 500)); err != nil {
		t.Fatal(err)
	}
	// Train the analyzers across 9 simulated days, then land at 03:00.
	if err := g.Advance(9*24*time.Hour + 3*time.Hour); err != nil {
		t.Fatal(err)
	}
	// A batch that cannot finish before the offices reopen.
	h, err := g.Submit(asct.NewApplication("overnight").
		Parametric(3, 10*3600*450). // ~10h at 450 MIPS
		Allocate(resource.Vector{MIPS: 450, RAMMB: 64}).
		Checkpoint(3600 * 450). // hourly checkpoints
		RestartEvicted())
	if err != nil {
		t.Fatal(err)
	}
	// Run through the 09:00 owner arrivals.
	if err := g.Advance(9 * time.Hour); err != nil {
		t.Fatal(err)
	}
	grmStats := c.GRM().Stats()
	if grmStats.TasksDrained == 0 {
		t.Fatalf("no proactive drains before owner returns; stats=%+v", grmStats)
	}
	if grmStats.GracefulDepartures == 0 {
		t.Fatalf("no departure notices reached the GRM; stats=%+v", grmStats)
	}
	// The drains carried exact progress: work past the last checkpoint
	// boundary was preserved, not lost.
	if grmStats.DrainWorkSavedMI < 0 {
		t.Fatalf("DrainWorkSavedMI = %v", grmStats.DrainWorkSavedMI)
	}
	drained := 0
	for _, l := range c.LRMs() {
		st := l.Stats()
		drained += st.TasksDrained
	}
	if drained == 0 {
		t.Fatal("no LRM recorded a drained task")
	}
	// The batch still completes: drained tasks migrate and finish elsewhere
	// (or back on the desktops once their owners leave).
	if err := g.Advance(30 * time.Hour); err != nil {
		t.Fatal(err)
	}
	st, err := h.Status()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done() {
		t.Fatalf("overnight batch incomplete after migration: %+v", st.Tasks)
	}
}
