package core

import (
	"fmt"
	"sort"

	"integrade/internal/election"
	"integrade/internal/grm"
	"integrade/internal/orb"
)

// sourceInvoker is the invoker managers and their consensus nodes send
// through: it stamps the sending endpoint onto every call so the chaos
// engine can enforce one-way partitions sender-side (the interceptor only
// sees targets). Chaos is consulted dynamically — a manager built before
// EnableChaos still honours partitions scheduled afterwards.
type sourceInvoker struct {
	g      *Grid
	source string
}

// Invoke implements orb.Invoker.
func (i *sourceInvoker) Invoke(ref orb.ObjectRef, op string, arg []byte) ([]byte, error) {
	if e := i.g.Chaos(); e != nil {
		if err := e.CheckSend(i.source, ref.Endpoint, ref.Key, op); err != nil {
			return nil, err
		}
	}
	return i.g.orb.Invoke(ref, op, arg)
}

// EnableReplicaSet puts the cluster's management plane under consensus: the
// existing manager plus extra fresh incarnations form a replica set with an
// elected leader. The incumbent bootstraps term 1, replication batches become
// quorum-acknowledged log entries, and every outbound manager write carries
// the leader's term as its fencing epoch. When the leader dies or is
// partitioned from a quorum, the survivors elect a successor and the grid
// swaps it in as the cluster's active manager (Naming rebind, hierarchy
// re-parenting) — no silence-monitor promotion involved.
func (c *Cluster) EnableReplicaSet(extra int) error {
	if extra < 1 {
		return fmt.Errorf("core: replica set needs at least one extra member, got %d", extra)
	}
	g := c.grid
	c.mgmtMu.Lock()
	if len(c.replicas) > 0 {
		c.mgmtMu.Unlock()
		return fmt.Errorf("core: cluster %q already runs a replica set", c.id)
	}
	incumbent := c.mgr
	gen := c.gen
	c.gen += extra
	c.mgmtMu.Unlock()

	members := []*manager{incumbent}
	for i := 1; i <= extra; i++ {
		m, err := c.buildManager(gen + i)
		if err != nil {
			return err
		}
		members = append(members, m)
	}

	peers := make(map[string]orb.ObjectRef, len(members))
	for _, m := range members {
		peers[m.ep] = orb.ObjectRef{Endpoint: m.grmRef.Endpoint, Key: election.ObjectKey}
	}

	nodes := make([]*election.Node, 0, len(members))
	for i, m := range members {
		m := m
		en := election.NewNode(election.Config{
			ID:         m.ep,
			Peers:      peers,
			Clock:      g.clock,
			RNG:        g.rng.Fork("elect-" + m.ep),
			Inv:        &sourceInvoker{g: g, source: m.ep},
			Apply:      m.grm.ApplyReplicaEntry,
			OnLeader:   func(term int) { m.grm.LeadAt(term); c.adoptLeader(m) },
			OnFollower: func(term int, leader string) { m.grm.FollowAt(term) },
			Bootstrap:  i == 0,
			Logger:     g.log,
		})
		m.elect = en
		m.grm.UseElection(en)
		if i > 0 {
			m.grm.FollowAt(0) // fresh members start as passive followers
		}
		if err := m.adapter.Register(election.ObjectKey, en.Servant()); err != nil {
			return err
		}
		nodes = append(nodes, en)
	}

	c.mgmtMu.Lock()
	c.replicas = members
	c.mgmtMu.Unlock()

	// Followers first, so the incumbent's bootstrap round finds every
	// election servant registered and listening.
	for i := len(nodes) - 1; i >= 0; i-- {
		nodes[i].Start()
	}
	return nil
}

// Replicas returns the GRMs of the cluster's consensus replica set in member
// order (the incumbent first), or nil when no replica set is armed.
func (c *Cluster) Replicas() []*grm.GRM {
	c.mgmtMu.Lock()
	defer c.mgmtMu.Unlock()
	out := make([]*grm.GRM, 0, len(c.replicas))
	for _, m := range c.replicas {
		out = append(out, m.grm)
	}
	return out
}

// ReplicaEndpoints returns the replica set's loopback endpoint names, sorted —
// the addresses chaos partitions operate on.
func (c *Cluster) ReplicaEndpoints() []string {
	c.mgmtMu.Lock()
	defer c.mgmtMu.Unlock()
	eps := make([]string, 0, len(c.replicas))
	for _, m := range c.replicas {
		eps = append(eps, m.ep)
	}
	sort.Strings(eps)
	return eps
}

// replicaRefs returns the replica set's GRM references sorted by endpoint,
// for the LRM resolver rotation.
func (c *Cluster) replicaRefs() []orb.ObjectRef {
	c.mgmtMu.Lock()
	defer c.mgmtMu.Unlock()
	ms := append([]*manager(nil), c.replicas...)
	sort.Slice(ms, func(i, j int) bool { return ms[i].ep < ms[j].ep })
	refs := make([]orb.ObjectRef, 0, len(ms))
	for _, m := range ms {
		refs = append(refs, m.grmRef)
	}
	return refs
}

// adoptLeader swaps a newly elected replica in as the cluster's active
// manager and re-points the shared directory state at it. The deposed leader
// is left running — it is a live follower now, fenced by its stale epoch, not
// a corpse to tear down.
func (c *Cluster) adoptLeader(m *manager) {
	c.mgmtMu.Lock()
	if c.mgr == m {
		c.mgmtMu.Unlock()
		return
	}
	c.mgr = m
	c.mgmtMu.Unlock()
	c.grid.rebindManager(c, m)
	c.grid.log.Info("consensus leader adopted", "cluster", c.id, "endpoint", m.ep)
}
