package core

import (
	"testing"
	"time"

	"integrade/internal/grm"
	"integrade/internal/protocol"
	"integrade/internal/resource"
)

// replicaGrid builds the consensus-suite fixture: one cluster, four dedicated
// nodes, chaos armed, and the management plane running as a three-member
// replica set (the incumbent plus two fresh followers). The long suspect and
// offer-TTL horizons keep the managers' failure detectors out of the way so
// the tests observe election and fencing behaviour, not liveness timeouts.
func replicaGrid(t *testing.T, seed int64) (*Grid, *Cluster) {
	t.Helper()
	g := NewGrid(WithSeed(seed))
	c, err := g.AddCluster("c1",
		WithSchedulePeriod(15*time.Second),
		WithUpdatePeriod(15*time.Second),
		WithGRMOptions(
			grm.WithSuspectAfter(10*time.Minute),
			grm.WithOfferTTL(10*time.Minute)))
	if err != nil {
		g.Stop()
		t.Fatal(err)
	}
	if _, err := c.AddNodes(DedicatedNodes(4, 1000)); err != nil {
		g.Stop()
		t.Fatal(err)
	}
	g.EnableChaos(seed)
	if err := c.EnableReplicaSet(2); err != nil {
		g.Stop()
		t.Fatal(err)
	}
	return g, c
}

// primaries counts RolePrimary members of the replica set, skipping the
// explicitly excluded (crashed) one whose role is frozen at death.
func primaries(c *Cluster, exclude *grm.GRM) (int, *grm.GRM) {
	n, last := 0, (*grm.GRM)(nil)
	for _, r := range c.Replicas() {
		if r == exclude {
			continue
		}
		if r.Role() == grm.RolePrimary {
			n++
			last = r
		}
	}
	return n, last
}

// assertTermsDisjoint fails the test if any election term was won by two
// members — the core single-leader-per-term safety property.
func assertTermsDisjoint(t *testing.T, c *Cluster) {
	t.Helper()
	won := make(map[int]string)
	for _, r := range c.Replicas() {
		en := r.Election()
		if en == nil {
			continue
		}
		for _, term := range en.WonTerms() {
			if prev, dup := won[term]; dup && prev != en.ID() {
				t.Fatalf("term %d won by both %s and %s", term, prev, en.ID())
			}
			won[term] = en.ID()
		}
	}
}

// TestConsensusFailoverOnLeaderCrash crashes the elected leader mid-run: the
// surviving quorum must elect a successor, the grid must swap it in as the
// cluster's active manager, and the quorum-replicated application state must
// carry every in-flight task through to completion — zero losses, zero
// orphans reaped.
func TestConsensusFailoverOnLeaderCrash(t *testing.T) {
	seed := failoverSeed(t)
	g, c := replicaGrid(t, seed)
	defer g.Stop()

	if err := g.Advance(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	leader := c.GRM()
	if leader.Role() != grm.RolePrimary || leader.Epoch() != 1 {
		t.Fatalf("bootstrap leader: role=%v epoch=%d", leader.Role(), leader.Epoch())
	}
	if n, _ := primaries(c, nil); n != 1 {
		t.Fatalf("primaries = %d, want 1", n)
	}

	// Four 10-minute tasks, one per node, quorum-replicated as they place.
	appID, err := leader.Submit(protocol.ApplicationSpec{
		Name:        "inflight",
		Kind:        protocol.AppParametric,
		NumTasks:    4,
		WorkPerTask: 300_000,
		Alloc:       resource.Vector{MIPS: 500, RAMMB: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Advance(time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := leader.Stats().QuorumBatches; got < 1 {
		t.Fatalf("QuorumBatches on leader = %d, want >= 1", got)
	}

	if err := g.CrashGRM("c1"); err != nil {
		t.Fatal(err)
	}
	if err := g.Advance(2 * time.Minute); err != nil {
		t.Fatal(err)
	}

	succ := c.GRM()
	if succ == leader {
		t.Fatal("active manager did not change after leader crash")
	}
	if succ.Role() != grm.RolePrimary {
		t.Fatalf("successor role = %v", succ.Role())
	}
	if succ.Epoch() < 2 {
		t.Fatalf("successor epoch = %d, want >= 2", succ.Epoch())
	}
	if got := succ.Stats().Promotions; got != 1 {
		t.Fatalf("successor Promotions = %d, want 1", got)
	}
	if n, p := primaries(c, leader); n != 1 || p != succ {
		t.Fatalf("primaries among survivors = %d (active match %v)", n, p == succ)
	}
	found := false
	for _, id := range succ.AppIDs() {
		if id == appID {
			found = true
		}
	}
	if !found {
		t.Fatalf("successor lost the replicated app: %v", succ.AppIDs())
	}

	// The in-flight work must finish under the successor: the LRMs keep the
	// tasks running, re-register through Naming, and report completions to
	// the new leader. Quorum mode loses nothing.
	if err := g.Advance(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	st, err := succ.AppStatus(appID)
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range st.Tasks {
		if task.State != protocol.TaskDone {
			t.Fatalf("task %s = %v after consensus failover", task.TaskID, task.State)
		}
	}
	orphans := 0
	for _, l := range c.LRMs() {
		ls := l.Stats()
		if ls.Reregistrations < 1 {
			t.Fatalf("node %s never re-registered with the successor", l.Node().ID())
		}
		orphans += ls.OrphansCancelled
	}
	if orphans != 0 {
		t.Fatalf("orphans cancelled after quorum failover = %d, want 0", orphans)
	}
	if got := succ.Stats().NodesDeclaredDead; got != 0 {
		t.Fatalf("spurious deaths after failover: %d", got)
	}
	assertTermsDisjoint(t, c)
}

// TestConsensusSplitBrainFencing partitions the leader's election traffic
// away from both followers, leaving its data-plane links to the LRMs intact —
// the classic split-brain: the old leader still believes it is primary while
// the quorum elects a successor. Safety must come entirely from fencing:
// the deposed leader loses its replication quorum and starts refusing LRM
// updates, the LRMs re-register with the new leader and adopt its higher
// epoch, and every write the old leader then attempts is rejected — zero
// accepted. Healing the partition demotes the old leader to a follower.
func TestConsensusSplitBrainFencing(t *testing.T) {
	seed := failoverSeed(t)
	g, c := replicaGrid(t, seed)
	defer g.Stop()
	engine := g.Chaos()

	if err := g.Advance(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	oldMgr := c.manager()
	old := oldMgr.grm
	if old.Role() != grm.RolePrimary || old.Epoch() != 1 {
		t.Fatalf("bootstrap leader: role=%v epoch=%d", old.Role(), old.Epoch())
	}

	// Cut the leader's consensus links both ways. Manager and election
	// traffic is source-checked, but the LRM endpoints are outside the
	// directed rules, so the old leader can still reach every LRM — exactly
	// the window fencing has to close.
	for _, ep := range c.ReplicaEndpoints() {
		if ep == oldMgr.ep {
			continue
		}
		engine.IsolateDirected(oldMgr.ep, ep)
		engine.IsolateDirected(ep, oldMgr.ep)
	}
	if err := g.Advance(2 * time.Minute); err != nil {
		t.Fatal(err)
	}

	newLeader := c.GRM()
	if newLeader == old {
		t.Fatal("no successor elected across the partition")
	}
	newEpoch := newLeader.Epoch()
	if newLeader.Role() != grm.RolePrimary || newEpoch < 2 {
		t.Fatalf("successor: role=%v epoch=%d", newLeader.Role(), newEpoch)
	}
	// Split-brain standing: the partitioned old leader still thinks it leads.
	if old.Role() != grm.RolePrimary {
		t.Fatalf("old leader role = %v, want still-primary split-brain", old.Role())
	}
	// Quorum loss made it refuse updates, which drove every LRM to the new
	// leader and onto the new fencing epoch.
	if got := old.Stats().UpdatesRefused; got < 1 {
		t.Fatalf("old leader UpdatesRefused = %d, want >= 1", got)
	}
	for _, l := range c.LRMs() {
		if got := l.Fence(); got != newEpoch {
			t.Fatalf("node %s fence = %d, want %d", l.Node().ID(), got, newEpoch)
		}
		if l.Stats().Reregistrations < 1 {
			t.Fatalf("node %s never re-registered across the partition", l.Node().ID())
		}
	}

	// The fenced leader keeps scheduling — and every write must bounce.
	rejectedBefore := 0
	for _, l := range c.LRMs() {
		rejectedBefore += l.Stats().StaleEpochRejections
	}
	staleApp, err := old.Submit(protocol.ApplicationSpec{
		Name:        "fenced",
		Kind:        protocol.AppParametric,
		NumTasks:    2,
		WorkPerTask: 60_000,
		Alloc:       resource.Vector{MIPS: 500, RAMMB: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Advance(time.Minute); err != nil {
		t.Fatal(err)
	}
	st, err := old.AppStatus(staleApp)
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range st.Tasks {
		if task.State != protocol.TaskPending || task.NodeID != "" {
			t.Fatalf("fenced leader write accepted: task %s state=%v node=%q",
				task.TaskID, task.State, task.NodeID)
		}
	}
	rejected := 0
	for _, l := range c.LRMs() {
		rejected += l.Stats().StaleEpochRejections
	}
	if rejected <= rejectedBefore {
		t.Fatalf("no stale-epoch rejections recorded (before=%d after=%d)",
			rejectedBefore, rejected)
	}

	// The quorum side must meanwhile run real work end to end.
	liveApp, err := newLeader.Submit(protocol.ApplicationSpec{
		Name:        "live",
		Kind:        protocol.AppParametric,
		NumTasks:    4,
		WorkPerTask: 60_000,
		Alloc:       resource.Vector{MIPS: 500, RAMMB: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Advance(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	lst, err := newLeader.AppStatus(liveApp)
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range lst.Tasks {
		if task.State != protocol.TaskDone {
			t.Fatalf("live task %s = %v under new leader", task.TaskID, task.State)
		}
	}
	assertTermsDisjoint(t, c)

	// Heal: the deposed leader hears the higher term and steps down; exactly
	// one primary remains and the old member adopts the current epoch.
	engine.HealAll()
	if err := g.Advance(time.Minute); err != nil {
		t.Fatal(err)
	}
	if old.Role() == grm.RolePrimary {
		t.Fatal("old leader still primary after heal")
	}
	if got := old.Epoch(); got < newEpoch {
		t.Fatalf("old leader epoch after heal = %d, want >= %d", got, newEpoch)
	}
	if n, p := primaries(c, nil); n != 1 || p.Epoch() < newEpoch {
		t.Fatalf("primaries after heal = %d", n)
	}
	assertTermsDisjoint(t, c)
}
