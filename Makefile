GO ?= go

# Seconds each fuzzer runs in the smoke target; CI uses the same knob.
FUZZ_SMOKE_TIME ?= 30s

.PHONY: all build test race vet lint fuzz-smoke fmt-check ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Custom analyzers (simclock, lockheld, orberr, nakedgo) plus stock go vet.
lint:
	$(GO) run ./cmd/integrade-lint ./...

# Short fuzz runs over the two wire decoders. Any crasher fails the target.
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzCompile -fuzztime=$(FUZZ_SMOKE_TIME) ./internal/constraint
	$(GO) test -run=^$$ -fuzz=FuzzReadFrame -fuzztime=$(FUZZ_SMOKE_TIME) ./internal/orb
	$(GO) test -run=^$$ -fuzz=FuzzUnmarshal -fuzztime=$(FUZZ_SMOKE_TIME) ./internal/orb

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Everything CI runs, in the same order.
ci: build fmt-check vet lint race fuzz-smoke
