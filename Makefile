GO ?= go

# Seconds each fuzzer runs in the smoke target; CI uses the same knob.
FUZZ_SMOKE_TIME ?= 30s

# Seeds the chaos target sweeps; each runs the fault-injection suite once.
CHAOS_SEEDS ?= 1 7 42

.PHONY: all build test race vet lint lint-fast interproc-lint fuzz-smoke fmt-check chaos failover election windows bench-orb bench-orb-check bench-sched bench-sched-check bench-windows ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# All custom analyzers (per-package + interprocedural) plus stock go vet,
# then staticcheck and govulncheck when they are on PATH. The external tools
# are optional locally — this module has no third-party deps and offline
# containers cannot install them — but CI installs pinned versions, so their
# findings still gate merges.
lint:
	$(GO) run ./cmd/integrade-lint ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "== staticcheck =="; staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it pinned)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		echo "== govulncheck =="; govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (CI runs it pinned)"; \
	fi

# Just the cheap per-package analyzers (simclock, lockheld, orberr,
# nakedgo) — no whole-module type-check, no call graph — for pre-commit use.
lint-fast:
	$(GO) run ./cmd/integrade-lint -novet -stage package ./...

# Just the call-graph analyzers (rpccycle, maporder, lockheld-transitive,
# wiredrift, lockorder, hotpath, cowstore), machine-readable: one JSON
# finding per line plus a summary line.
interproc-lint:
	$(GO) run ./cmd/integrade-lint -novet -analyzers interproc -json ./...

# Short fuzz runs over the wire decoders: the constraint compiler, the ORB
# framing layer, and the consensus/replication payload decoders. Any crasher
# fails the target.
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzCompile -fuzztime=$(FUZZ_SMOKE_TIME) ./internal/constraint
	$(GO) test -run=^$$ -fuzz=FuzzReadFrame -fuzztime=$(FUZZ_SMOKE_TIME) ./internal/orb
	$(GO) test -run=^$$ -fuzz=FuzzUnmarshal -fuzztime=$(FUZZ_SMOKE_TIME) ./internal/orb
	$(GO) test -run=^$$ -fuzz=FuzzAppendEntries -fuzztime=$(FUZZ_SMOKE_TIME) ./internal/election
	$(GO) test -run=^$$ -fuzz=FuzzReplicaBatch -fuzztime=$(FUZZ_SMOKE_TIME) ./internal/grm

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Fault-injection suite under the race detector, swept over fixed seeds.
# CHAOS_SEED parameterizes the seeded-trace tests; the packages cover the
# chaos engine itself, the resilient ORB client, the GRM failure detector,
# and the end-to-end crash/recovery paths in core.
chaos:
	@for seed in $(CHAOS_SEEDS); do \
		echo "== chaos suite, seed $$seed =="; \
		CHAOS_SEED=$$seed $(GO) test -race -count=1 \
			./internal/chaos ./internal/orb ./internal/grm ./internal/core || exit 1; \
	done

# GRM failover suite under the race detector, swept over the same fixed
# seeds: standby replication and promotion, LRM re-registration and the
# reconcile exchange, plus the end-to-end warm/cold recovery scenarios
# (primary crash mid-superstep, crash during a registration burst, and the
# double failover primary -> standby -> cold rebuild).
failover:
	@for seed in $(CHAOS_SEEDS); do \
		echo "== failover suite, seed $$seed =="; \
		CHAOS_SEED=$$seed $(GO) test -race -count=1 \
			-run 'Failover|Standby|Reconcile|FileStore' \
			./internal/core ./internal/grm ./internal/checkpoint || exit 1; \
	done

# Consensus control-plane suite under the race detector, swept over the same
# fixed seeds: leader election and log replication in internal/election,
# epoch fencing and quorum replication in the GRM, and the end-to-end
# replica-set scenarios in core (leader crash, split-brain partition with
# fencing, the Promote single-flight race).
election:
	@for seed in $(CHAOS_SEEDS); do \
		echo "== election suite, seed $$seed =="; \
		CHAOS_SEED=$$seed $(GO) test -race -count=1 \
			./internal/election || exit 1; \
		CHAOS_SEED=$$seed $(GO) test -race -count=1 \
			-run 'Consensus|Election|Epoch|Fenc|Quorum|Promote' \
			./internal/core ./internal/grm || exit 1; \
	done

# Availability-window suite under the race detector, swept over the same
# fixed seeds: the chaos flap primitive and its seeded determinism, the
# usage-trace window scans, the LUPA forecast accuracy floors, the BSP
# forced pre-departure checkpoint, the LRM departure drain, the GRM window
# filter + graceful-departure fast path (and their replication round-trip),
# and the end-to-end intermittent-fleet drain in core.
windows:
	@for seed in $(CHAOS_SEEDS); do \
		echo "== windows suite, seed $$seed =="; \
		CHAOS_SEED=$$seed $(GO) test -race -count=1 \
			-run 'Flap|Window|Depart|Drain|Forecast|RequestCheckpoint' \
			./internal/chaos ./internal/usage ./internal/lupa ./internal/bsp \
			./internal/lrm ./internal/grm ./internal/core || exit 1; \
	done

# ORB hot-path performance: the E12 microbenchmarks with allocation counts,
# then the machine-readable report checked in as BENCH_orb.json (compare it
# against the embedded pre_optimization_baseline block).
bench-orb:
	$(GO) test -run '^$$' -bench 'Invoke' -benchmem ./internal/orb
	$(GO) test -run '^$$' -bench 'Select' -benchmem ./internal/trading
	$(GO) run ./cmd/integrade-bench -orb-json BENCH_orb.json

# CI smoke variant: short measurement budget, report to a scratch path, plus
# the allocation gate (loopback invoke must stay within
# internal/orb/testdata/alloc_budget.txt).
bench-orb-check:
	$(GO) test -run TestLoopbackInvokeAllocBudget -count=1 -v ./internal/orb
	$(GO) run ./cmd/integrade-bench -orb-json /tmp/BENCH_orb_ci.json -orb-short

# Scheduling-path performance: the E14 throughput/latency sweep over
# 10^2-10^5 offers, written as the machine-readable BENCH_sched.json
# (compare against the embedded pre_pipeline_baseline block).
bench-sched:
	$(GO) run ./cmd/integrade-bench -sched-json BENCH_sched.json

# Availability-window experiment: the E15 aware-vs-blind comparison over
# intermittent fleets, written as the machine-readable BENCH_windows.json.
# Fully simulation-driven — the file is byte-stable for a fixed seed.
bench-windows:
	$(GO) run ./cmd/integrade-bench -windows-json BENCH_windows.json

# CI smoke variant: the throughput gate (the 10k-offer point must stay
# within internal/bench/testdata/sched_budget.txt), then a short-scale
# report to a scratch path.
bench-sched-check:
	$(GO) test -run TestSchedBudgetHolds -count=1 -v ./internal/bench
	$(GO) run ./cmd/integrade-bench -sched-json /tmp/BENCH_sched_ci.json -sched-short

# Everything CI runs, in the same order.
ci: build fmt-check vet lint interproc-lint race chaos failover election windows bench-orb-check bench-sched-check fuzz-smoke
