GO ?= go

# Seconds each fuzzer runs in the smoke target; CI uses the same knob.
FUZZ_SMOKE_TIME ?= 30s

.PHONY: all build test race vet lint interproc-lint fuzz-smoke fmt-check ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# All custom analyzers (per-package + interprocedural) plus stock go vet.
lint:
	$(GO) run ./cmd/integrade-lint ./...

# Just the call-graph analyzers (rpccycle, maporder, lockheld-transitive),
# machine-readable: one JSON finding per line plus a summary line.
interproc-lint:
	$(GO) run ./cmd/integrade-lint -novet -analyzers interproc -json ./...

# Short fuzz runs over the two wire decoders. Any crasher fails the target.
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzCompile -fuzztime=$(FUZZ_SMOKE_TIME) ./internal/constraint
	$(GO) test -run=^$$ -fuzz=FuzzReadFrame -fuzztime=$(FUZZ_SMOKE_TIME) ./internal/orb
	$(GO) test -run=^$$ -fuzz=FuzzUnmarshal -fuzztime=$(FUZZ_SMOKE_TIME) ./internal/orb

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Everything CI runs, in the same order.
ci: build fmt-check vet lint interproc-lint race fuzz-smoke
