// Package integrade_test hosts the repository-level benchmark harness: one
// testing.B benchmark per experiment table (DESIGN.md §9, EXPERIMENTS.md).
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Each benchmark executes its experiment once per iteration and reports the
// experiment's headline number as a custom metric; the full table is printed
// once per run (use cmd/integrade-bench for table-only output).
package integrade_test

import (
	"fmt"
	"strconv"
	"sync"
	"testing"

	"integrade/internal/bench"
)

var (
	printOnce sync.Map // experiment ID -> *sync.Once
	benchSeed = int64(1)
)

// runExperiment executes the experiment once per b.N iteration, prints its
// table on the first run of the process, and reports headline metrics.
func runExperiment(b *testing.B, id string, metrics func(t bench.Table, b *testing.B)) {
	b.Helper()
	var exp bench.Experiment
	for _, e := range bench.All() {
		if e.ID == id {
			exp = e
			break
		}
	}
	if exp.Run == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	var last bench.Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last = exp.Run(benchSeed)
	}
	b.StopTimer()
	if len(last.Rows) == 0 {
		b.Fatalf("%s produced no rows", id)
	}
	onceAny, _ := printOnce.LoadOrStore(id, &sync.Once{})
	if once, ok := onceAny.(*sync.Once); ok {
		once.Do(func() {
			fmt.Println()
			fmt.Println(last.String())
		})
	}
	if metrics != nil {
		metrics(last, b)
	}
}

// cell parses a numeric table cell; it returns 0 for non-numeric cells.
func cell(t bench.Table, row int, col string) float64 {
	for i, c := range t.Columns {
		if c != col {
			continue
		}
		if row < 0 {
			row += len(t.Rows)
		}
		if row < 0 || row >= len(t.Rows) || i >= len(t.Rows[row]) {
			return 0
		}
		v, err := strconv.ParseFloat(t.Rows[row][i], 64)
		if err != nil {
			return 0
		}
		return v
	}
	return 0
}

// rowByFirst finds the row index whose first cell equals key, or -1.
func rowByFirst(t bench.Table, key string) int {
	for i, r := range t.Rows {
		if len(r) > 0 && r[0] == key {
			return i
		}
	}
	return -1
}

func BenchmarkExp1InformationUpdate(b *testing.B) {
	runExperiment(b, "E1", func(t bench.Table, b *testing.B) {
		// Delivery ratio at the largest cluster size.
		b.ReportMetric(cell(t, -1, "delivery_%"), "delivery400_%")
		b.ReportMetric(cell(t, -1, "max_offer_age_s"), "maxOfferAge_s")
	})
}

func BenchmarkExp2ReservationProtocol(b *testing.B) {
	runExperiment(b, "E2", func(t bench.Table, b *testing.B) {
		if i := rowByFirst(t, "0"); i >= 0 {
			b.ReportMetric(cell(t, i, "rounds_per_placement"), "roundsAtIdle")
		}
		if i := rowByFirst(t, "75"); i >= 0 {
			b.ReportMetric(cell(t, i, "rounds_per_placement"), "roundsAt75pct")
		}
	})
}

func BenchmarkExp3UsageClustering(b *testing.B) {
	runExperiment(b, "E3", func(t bench.Table, b *testing.B) {
		if i := rowByFirst(t, "office"); i >= 0 {
			b.ReportMetric(cell(t, i, "idle_MAE_h"), "officeMAE_h")
			b.ReportMetric(cell(t, i, "naive_MAE_h"), "naiveMAE_h")
		}
	})
}

func BenchmarkExp4UsageAwareScheduling(b *testing.B) {
	runExperiment(b, "E4", func(t bench.Table, b *testing.B) {
		if i := rowByFirst(t, "random"); i >= 0 {
			b.ReportMetric(cell(t, i, "evictions"), "evictionsRandom")
		}
		if i := rowByFirst(t, "usage-aware"); i >= 0 {
			b.ReportMetric(cell(t, i, "evictions"), "evictionsUsageAware")
		}
	})
}

func BenchmarkExp5OwnerQoS(b *testing.B) {
	runExperiment(b, "E5", func(t bench.Table, b *testing.B) {
		if i := rowByFirst(t, "greedy"); i >= 0 {
			b.ReportMetric(cell(t, i, "mean_owner_slowdown"), "slowdownGreedy")
		}
		if i := rowByFirst(t, "shared"); i >= 0 {
			b.ReportMetric(cell(t, i, "mean_owner_slowdown"), "slowdownShared")
		}
	})
}

func BenchmarkExp6BSPCheckpointing(b *testing.B) {
	runExperiment(b, "E6", func(t bench.Table, b *testing.B) {
		if i := rowByFirst(t, "none"); i >= 0 {
			b.ReportMetric(cell(t, i, "work_lost_MI"), "lostNoCkpt_MI")
		}
		if i := rowByFirst(t, "10min-work"); i >= 0 {
			b.ReportMetric(cell(t, i, "work_lost_MI"), "lost10min_MI")
		}
	})
}

func BenchmarkExp7VirtualTopology(b *testing.B) {
	runExperiment(b, "E7", func(t bench.Table, b *testing.B) {
		if i := rowByFirst(t, "topology-aware"); i >= 0 {
			b.ReportMetric(cell(t, i, "placed"), "placedAware")
		}
	})
}

func BenchmarkExp8Hierarchy(b *testing.B) {
	runExperiment(b, "E8", func(t bench.Table, b *testing.B) {
		if i := rowByFirst(t, "3"); i >= 0 {
			b.ReportMetric(cell(t, i, "mean_hops"), "hopsDepth3")
			b.ReportMetric(cell(t, i, "routed_ok_%"), "okDepth3_%")
		}
	})
}

func BenchmarkExp9Recovery(b *testing.B) {
	runExperiment(b, "E9", func(t bench.Table, b *testing.B) {
		// Completion at the 20% crash level, with and without recovery.
		for i, r := range t.Rows {
			if len(r) > 2 && r[0] == "20%" && r[1] == "0%" {
				switch r[2] {
				case "integrade":
					b.ReportMetric(cell(t, i, "completion_pct"), "recovery20pct_%")
				case "integrade-no-recovery":
					b.ReportMetric(cell(t, i, "completion_pct"), "noRecovery20pct_%")
				}
			}
		}
	})
}

func BenchmarkExp11ORB(b *testing.B) {
	runExperiment(b, "E11", func(t bench.Table, b *testing.B) {
		if i := rowByFirst(t, "inproc"); i >= 0 {
			b.ReportMetric(cell(t, i, "us_per_op"), "inproc64B_us")
		}
		if i := rowByFirst(t, "tcp"); i >= 0 {
			b.ReportMetric(cell(t, i, "us_per_op"), "tcp64B_us")
		}
	})
}

func BenchmarkExp12ORBPerf(b *testing.B) {
	runExperiment(b, "E12", func(t bench.Table, b *testing.B) {
		if i := rowByFirst(t, "invoke/loopback"); i >= 0 {
			// First loopback row is the single-caller point; the 64-caller
			// row two below it is the headline throughput number.
			b.ReportMetric(cell(t, i+2, "ns_per_op"), "loopback64c_ns")
			b.ReportMetric(cell(t, i+2, "allocs_per_op"), "loopback64c_allocs")
		}
		if i := rowByFirst(t, "trader/select"); i >= 0 {
			b.ReportMetric(cell(t, i, "ns_per_op"), "select100_ns")
		}
	})
}

func BenchmarkExp13Failover(b *testing.B) {
	runExperiment(b, "E13", func(t bench.Table, b *testing.B) {
		// First warm/cold rows are the 30 s detection threshold.
		if i := rowByFirst(t, "warm"); i >= 0 {
			b.ReportMetric(cell(t, i, "recover_s"), "warmRecover_s")
			b.ReportMetric(cell(t, i, "inflight_lost"), "warmLost")
			b.ReportMetric(cell(t, i, "makespan_min"), "warmMakespan_min")
		}
		if i := rowByFirst(t, "cold"); i >= 0 {
			b.ReportMetric(cell(t, i, "inflight_lost"), "coldLost")
			b.ReportMetric(cell(t, i, "makespan_min"), "coldMakespan_min")
		}
	})
}

func BenchmarkExp15Windows(b *testing.B) {
	runExperiment(b, "E15", func(t bench.Table, b *testing.B) {
		// Headline: lost work on the office-hours fleet, aware vs. blind.
		for i, r := range t.Rows {
			if len(r) > 1 && r[0] == "office-hours" {
				switch r[1] {
				case "window-aware":
					b.ReportMetric(cell(t, i, "lost_GI"), "awareLost_GI")
					b.ReportMetric(cell(t, i, "makespan_h"), "awareMakespan_h")
				case "window-blind":
					b.ReportMetric(cell(t, i, "lost_GI"), "blindLost_GI")
					b.ReportMetric(cell(t, i, "makespan_h"), "blindMakespan_h")
				}
			}
		}
	})
}

func BenchmarkExp10Baselines(b *testing.B) {
	runExperiment(b, "E10", func(t bench.Table, b *testing.B) {
		if i := rowByFirst(t, "integrade"); i >= 0 {
			b.ReportMetric(cell(t, i, "delivered_GI"), "integradeGI")
			b.ReportMetric(cell(t, i, "owner_busy_GI"), "partialIdleGI")
		}
		if i := rowByFirst(t, "boinc-like"); i >= 0 {
			b.ReportMetric(cell(t, i, "bsp_rejected"), "boincBSPRejected")
		}
	})
}

func BenchmarkAblationUpdatePeriod(b *testing.B) {
	runExperiment(b, "A1", func(t bench.Table, b *testing.B) {
		if i := rowByFirst(t, "10m0s"); i >= 0 {
			b.ReportMetric(cell(t, i, "rounds_per_placement"), "roundsAt10m")
		}
	})
}

func BenchmarkAblationMaxAttempts(b *testing.B) {
	runExperiment(b, "A2", func(t bench.Table, b *testing.B) {
		if i := rowByFirst(t, "1"); i >= 0 {
			b.ReportMetric(cell(t, i, "placed_immediately"), "placedBudget1")
		}
		if i := rowByFirst(t, "8"); i >= 0 {
			b.ReportMetric(cell(t, i, "placed_immediately"), "placedBudget8")
		}
	})
}

func BenchmarkAblationOfferTTL(b *testing.B) {
	runExperiment(b, "A3", func(t bench.Table, b *testing.B) {
		if i := rowByFirst(t, "1h0m0s"); i >= 0 {
			b.ReportMetric(cell(t, i, "refusal_%"), "refusalGhostTTL_%")
		}
	})
}
